package slicc

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// Integration coverage for the store's in-memory hot tier
// (EngineOptions.StoreMemBytes / sliccd -store-mem-mb): the tier is a
// pure read accelerator, so every output must be byte-identical with it
// on, off, or mixed across processes, in both warm directions.

// tieredEngine opens an engine over dir with the memory tier enabled.
func tieredEngine(t testing.TB, dir string) *Engine {
	t.Helper()
	eng, err := NewEngine(EngineOptions{Workers: 2, StoreDir: dir, StoreMemBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// renderExperiments formats a fixed set of experiments through eng.
func renderExperiments(t *testing.T, eng *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range []string{"fig7", "fig3"} {
		tables, err := eng.Experiment(context.Background(), id, true, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tables {
			tb.Format(&buf)
		}
	}
	return buf.Bytes()
}

// TestMemTierByteIdenticalBothDirections is the tier's acceptance test:
// a store written by an untiered engine warms a tiered one and vice
// versa, and all four renderings (cold/warm x tiered/untiered) are
// byte-identical.
func TestMemTierByteIdenticalBothDirections(t *testing.T) {
	// Direction 1: untiered writer → tiered reader.
	dir1 := t.TempDir()
	coldPlain := storeEngine(t, dir1)
	outColdPlain := renderExperiments(t, coldPlain)

	warmTiered := tieredEngine(t, dir1)
	outWarmTiered := renderExperiments(t, warmTiered)
	if s := warmTiered.Stats(); s.SimsExecuted != 0 {
		t.Fatalf("tiered engine over a warm store executed %d sims", s.SimsExecuted)
	}
	if !bytes.Equal(outColdPlain, outWarmTiered) {
		t.Fatalf("untiered→tiered warm output differs:\ncold:\n%s\nwarm:\n%s", outColdPlain, outWarmTiered)
	}

	// Direction 2: tiered writer → untiered reader.
	dir2 := t.TempDir()
	coldTiered := tieredEngine(t, dir2)
	outColdTiered := renderExperiments(t, coldTiered)
	if !bytes.Equal(outColdPlain, outColdTiered) {
		t.Fatal("tiered cold run renders differently from untiered cold run")
	}

	warmPlain := storeEngine(t, dir2)
	outWarmPlain := renderExperiments(t, warmPlain)
	if s := warmPlain.Stats(); s.SimsExecuted != 0 {
		t.Fatalf("untiered engine over a tiered-written store executed %d sims", s.SimsExecuted)
	}
	if !bytes.Equal(outColdPlain, outWarmPlain) {
		t.Fatal("tiered→untiered warm output differs")
	}

	// Every disk hit promoted into the tier (a rerun would be served by
	// the runner's decoded memo above the store, so the tier's own hit
	// path is exercised by the store and server tests instead).
	st, ok := warmTiered.StoreStats()
	if !ok {
		t.Fatal("no store stats")
	}
	if st.MemEntries == 0 || st.MemMisses == 0 {
		t.Fatalf("warm reads did not promote into the tier: %+v", st)
	}
	if !bytes.Equal(outWarmTiered, renderExperiments(t, warmTiered)) {
		t.Fatal("rerun differs")
	}
}

// TestMemTierRunMatchesUntiered: single-run equality, plus the engine's
// stats mirror carrying the tier fields.
func TestMemTierRunMatchesUntiered(t *testing.T) {
	dir := t.TempDir()
	plain := storeEngine(t, dir)
	r1, err := plain.Run(context.Background(), tiny(SLICCSW))
	if err != nil {
		t.Fatal(err)
	}
	tiered := tieredEngine(t, dir)
	r2, err := tiered.Run(context.Background(), tiny(SLICCSW))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("tiered store hit differs from executed result:\n%+v\nvs\n%+v", r1, r2)
	}
	st, ok := tiered.StoreStats()
	if !ok {
		t.Fatal("no store stats")
	}
	// The store hit promoted the entry into the tier.
	if st.MemEntries == 0 {
		t.Fatalf("nothing promoted into the tier: %+v", st)
	}
}

// TestMemTierStreamingSweepConcurrent runs real streaming sweeps through
// one tiered engine from several goroutines — cold cells Put while warm
// cells Get and the tier evicts under a tiny budget. -race is the
// assertion; results must also agree across all streams.
func TestMemTierStreamingSweepConcurrent(t *testing.T) {
	eng, err := NewEngine(EngineOptions{
		Workers: 4, StoreDir: t.TempDir(),
		// A deliberately tiny tier (a few entries per shard) so eviction
		// churns while the sweeps run.
		StoreMemBytes: 64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })

	spec := SweepSpec{
		Workloads: []string{"tpcc1", "skewed"},
		Policies:  []string{"base", "slicc-sw"},
		Threads:   SweepInts(6),
		Scales:    SweepFloats(0.05),
	}
	run := func() (*SweepResult, int, error) {
		cells := 0
		res, err := eng.SweepStream(context.Background(), spec, func(ev SweepEvent) {
			if ev.Type == SweepEventCell {
				cells++
			}
		})
		return res, cells, err
	}
	ref, n, err := run()
	if err != nil || n != len(ref.Cells) {
		t.Fatalf("reference sweep: %v (%d cells)", err, n)
	}

	var wg sync.WaitGroup
	results := make([]*SweepResult, 4)
	errs := make([]error, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		for j, c := range results[i].Cells {
			if c.Cycles != ref.Cells[j].Cycles {
				t.Fatalf("sweep %d cell %d diverged: %v != %v", i, j, c.Cycles, ref.Cells[j].Cycles)
			}
		}
	}
	st, ok := eng.StoreStats()
	if !ok {
		t.Fatal("no store stats")
	}
	if st.MemHits+st.MemMisses+st.NegativeHits == 0 {
		t.Fatalf("tier never consulted: %+v", st)
	}
}

// TestStoreStatsMirror: the engine's StoreStats mirror carries every
// tier field, and disk evictions never leave the memory tier counting
// bytes the disk reclaimed.
func TestStoreStatsMirror(t *testing.T) {
	eng, err := NewEngine(EngineOptions{
		Workers: 1, StoreDir: t.TempDir(),
		StoreMaxBytes: 8 * 1024, StoreMemBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	for i := 0; i < 6; i++ {
		cfg := tiny(Baseline)
		cfg.Seed = int64(i + 1)
		if _, err := eng.Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := eng.StoreStats()
	if !ok {
		t.Fatal("no store stats")
	}
	if st.DiskEvictions == 0 {
		t.Skipf("results fit the budget; no eviction to observe: %+v", st)
	}
	if st.MemEntries > st.Entries {
		t.Fatalf("memory tier holds more entries than disk after evictions: %+v", st)
	}
	if st.MemEvictions != 0 && st.MemBytes == 0 {
		t.Fatalf("inconsistent tier stats: %+v", st)
	}
	fmt.Fprintf(testWriter{t}, "store stats after eviction churn: %+v\n", st)
}

// testWriter adapts t.Logf for fmt.Fprintf.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
