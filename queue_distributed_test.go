package slicc_test

// The distributed fault-injection harness: real sliccd and sliccworker
// binaries, real SIGKILLs. One test crashes a fleet member mid-lease and
// proves the visibility timeout hands its cell to a second worker with
// byte-identical results and exactly-once store entries; the other feeds
// a worker a deterministically poisoned cell and proves it dead-letters
// with its whole error chain, survives a control-plane restart, and heals
// once the DLQ entry is cleared.

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"slicc"
	"slicc/sdk"
)

// buildSliccworker compiles the real sliccworker binary into dir.
func buildSliccworker(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "sliccworker")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sliccworker")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sliccworker: %v\n%s", err, out)
	}
	return bin
}

// bootSliccworker starts a fleet member and waits for its startup line.
func bootSliccworker(t *testing.T, bin string, args ...string) *sliccdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &sliccdProc{t: t, cmd: cmd}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = p.wait()
	})
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			t.Fatal("sliccworker exited before its startup line")
		}
		if !strings.HasPrefix(line, "sliccworker polling ") {
			t.Fatalf("unexpected sliccworker startup line %q", line)
		}
		return p
	case <-time.After(20 * time.Second):
		t.Fatal("sliccworker did not start within 20s")
	}
	panic("unreachable")
}

// distKillSpec is the sweep the crash harness runs: 8 cells slow enough
// (several hundred ms each) that a single-threaded worker is reliably
// mid-lease when the SIGKILL lands.
func distKillSpec() slicc.SweepSpec {
	return slicc.SweepSpec{
		Name:      "dist-kill",
		Workloads: []string{"tpcc1", "skewed"},
		Policies:  []string{"base", "nextline", "slicc-sw", "stream"},
		Threads:   slicc.SweepInts(8),
		Scales:    slicc.SweepFloats(2),
	}
}

// queueStats fetches the control plane's queue stats block.
func queueStats(t *testing.T, c *sdk.Client) sdk.QueueStats {
	t.Helper()
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queue == nil {
		t.Fatal("control plane reports no queue block; is it distributed?")
	}
	return *st.Queue
}

// storeEntries lists the .sre result files directly under a store dir.
func storeEntries(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".sre") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestDistributedSweepKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots sliccd and sliccworker binaries, runs multi-second sweeps")
	}
	dir := t.TempDir()
	sliccd := buildSliccd(t, dir)
	sliccworker := buildSliccworker(t, dir)
	spec := distKillSpec()
	ctx := context.Background()

	// Reference: the same sweep standalone (no queue, no fleet).
	refStore := filepath.Join(dir, "store-ref")
	ref := bootSliccd(t, sliccd, "-addr", "127.0.0.1:0", "-store", refStore)
	refClient := sdk.New(ref.base)
	refRes, err := refClient.WatchSweep(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if engineStats(t, refClient).SimsExecuted == 0 {
		t.Fatal("reference run executed nothing")
	}
	ref.stop()

	// Distributed control plane: short lease TTL so the killed worker's
	// cell comes back quickly.
	distStore := filepath.Join(dir, "store-dist")
	cp := bootSliccd(t, sliccd, "-addr", "127.0.0.1:0", "-store", distStore,
		"-distributed", "-queue-lease-ttl", "2s", "-queue-backoff", "100ms")
	defer cp.stop()
	client := sdk.New(cp.base)

	// Worker 1: single-threaded, so cells go one at a time and the kill
	// lands mid-cell.
	w1 := bootSliccworker(t, sliccworker, "-server", cp.base, "-store", distStore,
		"-j", "1", "-poll", "1s", "-heartbeat", "300ms", "-name", "victim")

	var mu sync.Mutex
	cellSeen := map[int]int{}
	cellEvents := make(chan int, 64)
	type watchOut struct {
		res *slicc.SweepResult
		err error
	}
	watchDone := make(chan watchOut, 1)
	go func() {
		res, err := client.WatchSweep(ctx, spec, func(ev slicc.SweepEvent) {
			if ev.Type != slicc.SweepEventCell {
				return
			}
			mu.Lock()
			cellSeen[ev.Index]++
			mu.Unlock()
			cellEvents <- ev.Index
		})
		watchDone <- watchOut{res, err}
	}()

	// Let two cells finish, then wait for the victim to hold a lease and
	// SIGKILL it mid-cell.
	for seen := 0; seen < 2; {
		select {
		case <-cellEvents:
			seen++
		case out := <-watchDone:
			t.Fatalf("sweep finished before the kill (res=%v err=%v); enlarge distKillSpec", out.res != nil, out.err)
		case <-time.After(60 * time.Second):
			t.Fatal("no cell events within 60s")
		}
	}
	killDeadline := time.Now().Add(30 * time.Second)
	for queueStats(t, client).Leased == 0 {
		if time.Now().After(killDeadline) {
			t.Fatal("victim worker never held a lease after the first cells")
		}
		time.Sleep(5 * time.Millisecond)
	}
	w1.kill()

	// Worker 2 inherits the fleet. The expired lease's cell retries here.
	w2 := bootSliccworker(t, sliccworker, "-server", cp.base, "-store", distStore,
		"-j", "2", "-poll", "1s", "-name", "survivor")
	defer w2.stop()

	var out watchOut
	select {
	case out = <-watchDone:
	case <-time.After(120 * time.Second):
		t.Fatal("sweep did not complete after the replacement worker joined")
	}
	if out.err != nil {
		t.Fatalf("WatchSweep across the worker kill: %v", out.err)
	}

	// Byte-identical to the standalone run.
	if !reflect.DeepEqual(out.res, refRes) {
		t.Fatalf("distributed result diverges from standalone:\n%+v\nvs\n%+v", out.res, refRes)
	}
	if got, want := sweepCSV(t, out.res), sweepCSV(t, refRes); !bytes.Equal(got, want) {
		t.Fatalf("distributed CSV not byte-identical:\n%s\nvs\n%s", got, want)
	}

	// The watcher saw every cell exactly once across the crash.
	mu.Lock()
	for i, n := range cellSeen {
		if n != 1 {
			t.Errorf("cell %d observed %d times, want exactly once", i, n)
		}
	}
	seen := len(cellSeen)
	mu.Unlock()
	if seen != len(out.res.Cells) {
		t.Fatalf("observed %d distinct cells, want %d", seen, len(out.res.Cells))
	}

	// The control plane dispatched but never simulated; the kill shows up
	// as at least one lease expiry; nothing dead-lettered.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.SimsExecuted != 0 {
		t.Fatalf("control plane executed %d sims itself", st.Engine.SimsExecuted)
	}
	if st.Engine.SimsRemote == 0 {
		t.Fatal("control plane reports no remote sims")
	}
	if st.Queue.Expirations == 0 {
		t.Fatal("no lease expirations recorded — the kill never interrupted a lease")
	}
	if st.Queue.Dead != 0 || st.Queue.Pending != 0 || st.Queue.Leased != 0 {
		t.Fatalf("queue not drained clean: %+v", st.Queue)
	}

	// Exactly-once results: the fleet's store holds exactly the entries
	// the standalone run produced — same names, nothing extra, nothing
	// missing — even though one cell was executed (at least started) twice.
	refEntries := storeEntries(t, refStore)
	distEntries := storeEntries(t, distStore)
	if len(refEntries) == 0 || !reflect.DeepEqual(refEntries, distEntries) {
		t.Fatalf("store entries diverge:\nstandalone %v\ndistributed %v", refEntries, distEntries)
	}

	// Cross-warm direction 1: a standalone server over the fleet's store
	// re-runs the sweep with zero executions.
	cp.stop()
	warm1 := bootSliccd(t, sliccd, "-addr", "127.0.0.1:0", "-store", distStore)
	warmRes, err := sdk.New(warm1.base).WatchSweep(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmRes, refRes) {
		t.Fatal("standalone-over-distributed-store warm result diverges")
	}
	ws := engineStats(t, sdk.New(warm1.base))
	if ws.SimsExecuted != 0 || ws.StoreHits == 0 {
		t.Fatalf("warm standalone stats %+v, want pure store hits", ws)
	}
	warm1.stop()

	// Cross-warm direction 2: a distributed control plane over the
	// standalone store completes the sweep with no workers at all — every
	// cell is a store hit before it would be enqueued.
	warm2 := bootSliccd(t, sliccd, "-addr", "127.0.0.1:0", "-store", refStore, "-distributed")
	defer warm2.stop()
	warm2Client := sdk.New(warm2.base)
	warmRes2, err := warm2Client.WatchSweep(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmRes2, refRes) {
		t.Fatal("distributed-over-standalone-store warm result diverges")
	}
	wst, err := warm2Client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wst.Engine.SimsExecuted != 0 || wst.Engine.SimsRemote != 0 || wst.Queue.Enqueued != 0 {
		t.Fatalf("warm distributed stats engine=%+v queue=%+v, want zero executions and zero enqueues",
			wst.Engine, *wst.Queue)
	}
}

func TestDistributedPoisonJob(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots sliccd and sliccworker binaries")
	}
	dir := t.TempDir()
	sliccd := buildSliccd(t, dir)
	sliccworker := buildSliccworker(t, dir)
	storeDir := filepath.Join(dir, "store")
	queueDir := filepath.Join(storeDir, "queue")

	boot := func() (*sliccdProc, *sdk.Client) {
		cp := bootSliccd(t, sliccd, "-addr", "127.0.0.1:0", "-store", storeDir,
			"-distributed", "-queue-max-attempts", "2", "-queue-backoff", "50ms")
		return cp, sdk.New(cp.base)
	}
	cp, client := boot()

	// The fleet member refuses every cell whose payload carries Threads=9.
	w := bootSliccworker(t, sliccworker, "-server", cp.base, "-store", storeDir,
		"-j", "2", "-poll", "1s", "-name", "poisoned", "-fail-substr", `"Threads":9`)

	spec := `{"name":"poison","baseline":"none","workloads":["tpcc1"],"policies":["base"],"threads":[8,9],"scales":[0.1]}`
	postSweep := func(base, body string) (status, errText string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/sweeps?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sw struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
			t.Fatal(err)
		}
		return sw.Status, sw.Error
	}
	status, errText := postSweep(cp.base, spec)
	if status != "failed" {
		t.Fatalf("poisoned sweep status %q (error %q), want failed", status, errText)
	}
	for _, want := range []string{"dead after 2 attempts", "injected failure", "-fail-substr"} {
		if !strings.Contains(errText, want) {
			t.Fatalf("sweep error %q missing %q", errText, want)
		}
	}

	// The DLQ exposes the cell and its full error chain over HTTP.
	type deadList struct {
		Dead []struct {
			ID       string   `json:"id"`
			Attempts int      `json:"attempts"`
			Errors   []string `json:"errors"`
		} `json:"dead"`
	}
	getDead := func(base string) deadList {
		t.Helper()
		resp, err := http.Get(base + "/v1/queue/dead")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dl deadList
		if err := json.NewDecoder(resp.Body).Decode(&dl); err != nil {
			t.Fatal(err)
		}
		return dl
	}
	dl := getDead(cp.base)
	if len(dl.Dead) != 1 || dl.Dead[0].Attempts != 2 || len(dl.Dead[0].Errors) != 2 {
		t.Fatalf("DLQ over HTTP %+v, want one cell with two recorded attempts", dl.Dead)
	}
	for _, line := range dl.Dead[0].Errors {
		if !strings.Contains(line, "injected failure") {
			t.Fatalf("DLQ error line %q", line)
		}
	}
	poisonID := dl.Dead[0].ID

	// The healthy cell completed and its result is in the store.
	qs := queueStats(t, client)
	if qs.Completions != 1 || qs.Dead != 1 {
		t.Fatalf("queue stats %+v, want 1 completion + 1 dead", qs)
	}

	// The DLQ is durable: restart the control plane, the poison is still
	// there, and re-submitting the sweep fails fast without new attempts.
	w.stop()
	cp.stop()
	cp, client = boot()
	dl = getDead(cp.base)
	if len(dl.Dead) != 1 || dl.Dead[0].ID != poisonID || dl.Dead[0].Attempts != 2 {
		t.Fatalf("DLQ after restart %+v, want the same poison entry", dl.Dead)
	}
	status, errText = postSweep(cp.base, strings.Replace(spec, `"poison"`, `"poison-2"`, 1))
	if status != "failed" || !strings.Contains(errText, "dead after 2 attempts") {
		t.Fatalf("re-submitted sweep: status %q error %q, want fast DLQ failure", status, errText)
	}
	if qs := queueStats(t, client); qs.Failures != 0 || qs.Leases != 0 {
		t.Fatalf("re-submission re-attempted the poison cell: %+v", qs)
	}

	// Clearing the DLQ entry heals the sweep: remove the entry file (its
	// name is sha256(id), the documented on-disk contract), restart, and
	// a clean worker finishes the once-poisoned cell — the healthy cell is
	// already a store hit.
	cp.stop()
	sum := sha256.Sum256([]byte(poisonID))
	entryFile := filepath.Join(queueDir, hex.EncodeToString(sum[:])+".sqj")
	if err := os.Remove(entryFile); err != nil {
		t.Fatalf("removing DLQ entry file: %v", err)
	}
	cp, client = boot()
	defer cp.stop()
	w2 := bootSliccworker(t, sliccworker, "-server", cp.base, "-store", storeDir,
		"-j", "2", "-poll", "1s", "-name", "healer")
	defer w2.stop()
	status, errText = postSweep(cp.base, strings.Replace(spec, `"poison"`, `"poison-healed"`, 1))
	if status != "done" {
		t.Fatalf("healed sweep status %q (error %q)", status, errText)
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.SimsExecuted != 0 {
		t.Fatalf("healed control plane executed %d sims itself", st.Engine.SimsExecuted)
	}
	if st.Queue.Enqueued != 1 || st.Queue.Completions != 1 || st.Queue.Dead != 0 {
		t.Fatalf("healed queue stats %+v, want exactly the once-poisoned cell re-run", *st.Queue)
	}
	if st.Engine.SimsRemote != 1 {
		t.Fatalf("healed control plane remote sims %d, want 1", st.Engine.SimsRemote)
	}
}
