// Package sdk is the Go client for sliccd, the slicc HTTP service. It
// wraps the JSON API (submit/poll simulations and sweeps, stats) and the
// sweep event stream (Server-Sent Events) behind typed methods, reusing
// the root package's types so client and engine code read the same.
//
// The streaming client leans on the service's resume contract instead of
// inventing its own state: SSE reconnects carry Last-Event-ID so the
// server's lossless replay fills any gap, and when a sweep vanishes
// entirely (service restart — ErrSweepGone) WatchSweep re-POSTs the spec,
// whose id is its content key, and previously finished cells come back
// instantly as store hits. Callers observe every cell exactly once either
// way.
package sdk

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"slicc"
)

// Every request carries an X-Request-ID header — caller-provided via
// WithRequestID, otherwise generated — which the service echoes in its
// response header, error bodies and access log. An APIError carries the
// ID back, so a failing call's error string names the exact server log
// line to look at.

// requestIDKey carries a caller-chosen request ID in a context.
type requestIDKey struct{}

// WithRequestID returns a context that pins the X-Request-ID the client
// sends for requests made with it (at most 64 bytes of letters, digits,
// '.', '_' and '-', or the service substitutes its own). Without it every
// request gets a fresh generated ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// requestID returns the context's pinned request ID or a generated one.
func requestID(ctx context.Context) string {
	if id, ok := ctx.Value(requestIDKey{}).(string); ok && id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ErrSweepGone reports that the service no longer tracks the requested
// sweep: it was evicted, or the service restarted. The recovery is to
// re-POST the spec — ids are content keys, so the resubmitted sweep has
// the same id and every previously finished cell is a store hit.
// WatchSweep does this automatically.
var ErrSweepGone = errors.New("sweep no longer tracked by the service")

// APIError is a non-2xx response from the service, carrying its JSON
// error message and the request ID the failing exchange used.
type APIError struct {
	StatusCode int
	Message    string
	// RequestID identifies the failed request in the service's logs (from
	// the error body, falling back to the X-Request-ID response header).
	RequestID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("sliccd: %d: %s (request %s)", e.StatusCode, e.Message, e.RequestID)
	}
	return fmt.Sprintf("sliccd: %d: %s", e.StatusCode, e.Message)
}

// Simulation mirrors the service's simulation resource.
type Simulation struct {
	ID     string        `json:"id"`
	Status string        `json:"status"`
	Config slicc.Config  `json:"config"`
	Result *slicc.Result `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
	// NotModified reports that the service answered this poll with 304
	// (the client sent the last seen ETag and the resource is unchanged);
	// the fields above are replayed from the previous response. Completed
	// resources are immutable, so a NotModified poll is free for the
	// server and near-free on the wire.
	NotModified bool `json:"-"`
}

// Sweep mirrors the service's sweep resource, including the partial
// results a running or failed sweep exposes.
type Sweep struct {
	ID        string                  `json:"id"`
	Status    string                  `json:"status"`
	Spec      slicc.SweepSpec         `json:"spec"`
	Completed int                     `json:"completed"`
	Total     int                     `json:"total"`
	Partial   []slicc.SweepCellResult `json:"partial,omitempty"`
	Result    *slicc.SweepResult      `json:"result,omitempty"`
	Error     string                  `json:"error,omitempty"`
	// NotModified: see Simulation.NotModified.
	NotModified bool `json:"-"`
}

// StoreStats mirrors the store block of GET /v1/stats. Evictions are
// split per tier: disk entries evicted under -store-max-mb vs
// memory-tier entries evicted under -store-mem-mb.
type StoreStats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	DiskEvictions int64 `json:"evictions_disk"`
	MemEntries    int   `json:"mem_entries"`
	MemBytes      int64 `json:"mem_bytes"`
	MemEvictions  int64 `json:"evictions_mem"`
	MemHits       int64 `json:"mem_hits"`
	MemMisses     int64 `json:"mem_misses"`
	NegativeHits  int64 `json:"negative_hits"`
}

// ResponseCacheStats mirrors the response_cache block of GET /v1/stats:
// the service's response-byte cache and conditional-GET counters.
type ResponseCacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	NotModified uint64 `json:"not_modified"`
}

// QueueStats mirrors the queue block of GET /v1/stats on distributed
// control planes (sliccd -distributed): the durable job queue's current
// depth by state, the dead-letter queue, and lifetime counters.
type QueueStats struct {
	Pending     int   `json:"pending"`
	Leased      int   `json:"leased"`
	Dead        int   `json:"dead"`
	Enqueued    int64 `json:"enqueued"`
	Leases      int64 `json:"leases"`
	Heartbeats  int64 `json:"heartbeats"`
	Expirations int64 `json:"expirations"`
	Completions int64 `json:"completions"`
	Failures    int64 `json:"failures"`
}

// Stats mirrors GET /v1/stats.
type Stats struct {
	Engine slicc.EngineStats `json:"engine"`
	// Store is nil when the service runs without a persistent store.
	Store         *StoreStats        `json:"store,omitempty"`
	ResponseCache ResponseCacheStats `json:"response_cache"`
	// Queue is nil when the service is not a distributed control plane.
	Queue       *QueueStats `json:"queue,omitempty"`
	Simulations int         `json:"simulations"`
	// Sweeps counts tracked sweeps; SweepsRunning the running subset,
	// whose unfinished cells are SweepCellsPending (split further into
	// queued vs leased by the Queue block in distributed mode).
	Sweeps            int     `json:"sweeps"`
	SweepsRunning     int     `json:"sweeps_running"`
	SweepCellsPending int     `json:"sweep_cells_pending"`
	UptimeSeconds     float64 `json:"uptime_seconds"`
}

// Client talks to one sliccd instance. The zero value is not usable; call
// New.
type Client struct {
	baseURL string
	http    *http.Client
	// reconnect policy for streams (see Option docs for defaults).
	backoffMin   time.Duration
	backoffMax   time.Duration
	retryBudget  time.Duration
	watchRetries int

	// etags caches, per GET path, the last response that carried an ETag
	// (the service only sets one on completed, immutable resources) so
	// the next poll sends If-None-Match and a 304 replays the cached
	// body without the server marshaling or sending it again.
	mu    sync.Mutex
	etags map[string]*etagState
}

// etagState is one cached conditional-GET validator + body.
type etagState struct {
	etag string
	body []byte
}

// etagCacheCap bounds the client's conditional-GET cache (entries are
// full response bodies; a polling client touches few distinct paths).
const etagCacheCap = 64

// cachedETag returns the cached state for a GET path, if any.
func (c *Client) cachedETag(path string) *etagState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.etags[path]
}

// storeETag records a validator + body for path, evicting an arbitrary
// entry past the cap.
func (c *Client) storeETag(path, etag string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.etags == nil {
		c.etags = make(map[string]*etagState)
	}
	if _, ok := c.etags[path]; !ok && len(c.etags) >= etagCacheCap {
		for k := range c.etags {
			delete(c.etags, k)
			break
		}
	}
	c.etags[path] = &etagState{etag: etag, body: body}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). Streams hold connections open indefinitely,
// so the client must not set a global Timeout; use per-request contexts.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithBackoff sets the stream reconnect backoff range (first retry after
// min, doubling to at most max). Defaults: 50ms..2s.
func WithBackoff(min, max time.Duration) Option {
	return func(c *Client) { c.backoffMin, c.backoffMax = min, max }
}

// WithRetryBudget bounds how long a stream keeps retrying consecutive
// connection failures before giving up (the budget resets on every
// successful connect). Default 30s — enough to ride out a service
// restart. The context can always end retries sooner.
func WithRetryBudget(d time.Duration) Option {
	return func(c *Client) { c.retryBudget = d }
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL:      strings.TrimRight(baseURL, "/"),
		http:         &http.Client{},
		backoffMin:   50 * time.Millisecond,
		backoffMax:   2 * time.Second,
		retryBudget:  30 * time.Second,
		watchRetries: 3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do performs one JSON round trip. body == nil means no request body; out
// == nil discards the response body. GETs with an out participate in
// conditional requests: the last seen ETag for the path (if any) rides
// out as If-None-Match, a 304 decodes the cached body into out and
// reports notModified, and a 200 carrying an ETag refreshes the cache.
func (c *Client) do(ctx context.Context, method, path string, body, out any) (notModified bool, err error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return false, fmt.Errorf("sdk: encoding request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Request-ID", requestID(ctx))
	// Capture the cached state before sending so a concurrent cache
	// eviction cannot strand a 304 without its body.
	var cached *etagState
	if method == http.MethodGet && out != nil {
		if cached = c.cachedETag(path); cached != nil {
			req.Header.Set("If-None-Match", cached.etag)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified && cached != nil {
		io.Copy(io.Discard, resp.Body)
		return true, json.Unmarshal(cached.body, out)
	}
	if resp.StatusCode >= 300 {
		return false, decodeAPIError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return false, err
	}
	if cached != nil || resp.Header.Get("ETag") != "" {
		// Buffer so the body can back future conditional requests.
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return false, err
		}
		if etag := resp.Header.Get("ETag"); etag != "" {
			c.storeETag(path, etag, b)
		}
		return false, json.Unmarshal(b, out)
	}
	return false, json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError turns a non-2xx response into an *APIError, preserving
// the service's message and request ID when the body is its JSON error
// envelope.
func decodeAPIError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	msg := strings.TrimSpace(string(b))
	reqID := resp.Header.Get("X-Request-ID")
	if json.Unmarshal(b, &env) == nil && env.Error != "" {
		msg = env.Error
		if env.RequestID != "" {
			reqID = env.RequestID
		}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg, RequestID: reqID}
}

// waitQuery appends ?wait=1 when wait is set.
func waitQuery(wait bool) string {
	if wait {
		return "?wait=1"
	}
	return ""
}

// SubmitSimulation submits a configuration. With wait, the call blocks
// (up to the service's timeout) for the result; without, it returns the
// accepted, possibly still-running resource.
func (c *Client) SubmitSimulation(ctx context.Context, cfg slicc.Config, wait bool) (*Simulation, error) {
	var out Simulation
	if _, err := c.do(ctx, http.MethodPost, "/v1/simulations"+waitQuery(wait), cfg, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Simulation fetches a simulation by id, optionally waiting for it to
// finish.
func (c *Client) Simulation(ctx context.Context, id string, wait bool) (*Simulation, error) {
	var out Simulation
	nm, err := c.do(ctx, http.MethodGet, "/v1/simulations/"+id+waitQuery(wait), nil, &out)
	if err != nil {
		return nil, err
	}
	out.NotModified = nm
	return &out, nil
}

// SubmitSweep submits a sweep spec. Identical specs coalesce onto one
// run (ids are content keys), and after a service restart the same POST
// is the resume: finished cells replay from the store.
func (c *Client) SubmitSweep(ctx context.Context, spec slicc.SweepSpec, wait bool) (*Sweep, error) {
	var out Sweep
	if _, err := c.do(ctx, http.MethodPost, "/v1/sweeps"+waitQuery(wait), spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep fetches a sweep by id — status, completed/total progress and
// partial cells while running — optionally waiting for completion. A 404
// wraps ErrSweepGone.
func (c *Client) Sweep(ctx context.Context, id string, wait bool) (*Sweep, error) {
	var out Sweep
	nm, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+waitQuery(wait), nil, &out)
	if err != nil {
		return nil, sweepGone(err)
	}
	out.NotModified = nm
	return &out, nil
}

// ResumeSweep retries a failed sweep in place; for running or done sweeps
// it is a no-op returning current state. A 404 wraps ErrSweepGone —
// re-POST the spec instead.
func (c *Client) ResumeSweep(ctx context.Context, id string, wait bool) (*Sweep, error) {
	var out Sweep
	if _, err := c.do(ctx, http.MethodPost, "/v1/sweeps/"+id+"/resume"+waitQuery(wait), nil, &out); err != nil {
		return nil, sweepGone(err)
	}
	return &out, nil
}

// Stats fetches engine counters and service bookkeeping.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if _, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// sweepGone maps a 404 APIError onto ErrSweepGone (wrapped, so both
// errors.Is(err, ErrSweepGone) and errors.As(&APIError) work).
func sweepGone(err error) error {
	var ae *APIError
	if errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %w", ErrSweepGone, ae)
	}
	return err
}
