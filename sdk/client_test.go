package sdk

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slicc"
	"slicc/internal/server"
)

// tinySpec is a 4-cell sweep (2 workloads x 2 policies) small enough for
// integration tests.
func tinySpec() slicc.SweepSpec {
	return slicc.SweepSpec{
		Name:      "sdk-test",
		Workloads: []string{"tpcc1", "skewed"},
		Policies:  []string{"base", "slicc-sw"},
		Threads:   slicc.SweepInts(6),
		Scales:    slicc.SweepFloats(0.05),
	}
}

// realService boots an actual sliccd handler on an httptest server.
func realService(t *testing.T) *Client {
	t.Helper()
	eng, err := slicc.NewEngine(slicc.EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Options{Timeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return New(ts.URL)
}

// TestWatchSweepEndToEnd drives a real engine: submit, stream to done,
// every cell exactly once, final result matching a plain GET.
func TestWatchSweepEndToEnd(t *testing.T) {
	c := realService(t)
	ctx := context.Background()

	var mu sync.Mutex
	cells := map[int]int{}
	res, err := c.WatchSweep(ctx, tinySpec(), func(ev slicc.SweepEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Type == slicc.SweepEventCell {
			cells[ev.Index]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("result has %d cells, want 4", len(res.Cells))
	}
	for i := range res.Cells {
		if cells[i] != 1 {
			t.Fatalf("cell %d observed %d times, want exactly once (%v)", i, cells[i], cells)
		}
	}

	// The streamed run is the same resource the plain API sees.
	id, err := tinySpec().Key()
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.Sweep(ctx, id, true)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Status != "done" || !reflect.DeepEqual(sw.Result, res) {
		t.Fatalf("GET sweep diverges from WatchSweep: %+v", sw)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sweeps != 1 || st.Engine.SimsRequested == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSimulationRoundTrip(t *testing.T) {
	c := realService(t)
	cfg := slicc.Config{Benchmark: slicc.TPCC1, Threads: 4, Scale: 0.05}
	sim, err := c.SubmitSimulation(context.Background(), cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Status != "done" || sim.Result == nil || sim.Result.Instructions == 0 {
		t.Fatalf("simulation %+v", sim)
	}
	again, err := c.Simulation(context.Background(), sim.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Result, sim.Result) {
		t.Fatal("GET result diverges from submit result")
	}
}

// fakeCell fabricates a cell payload for scripted-stream tests.
func fakeCell(i int) *slicc.SweepCellResult {
	c := &slicc.SweepCellResult{}
	c.Workload, c.Policy = "tpcc1", "base"
	c.Cycles = float64(100 * (i + 1))
	return c
}

func writeEvent(w http.ResponseWriter, seq int, ev slicc.SweepEvent) {
	ev.Seq = seq
	b, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, seq, b)
	w.(http.Flusher).Flush()
}

func cellEvent(i int) slicc.SweepEvent {
	return slicc.SweepEvent{Type: slicc.SweepEventCell, Index: i, Completed: i + 1, Total: 4, Cell: fakeCell(i)}
}

// TestStreamReconnectsWithLastEventID scripts a service whose first
// stream connection dies after two events: the client must redial with
// Last-Event-ID and deliver the tail exactly once.
func TestStreamReconnectsWithLastEventID(t *testing.T) {
	var conns atomic.Int32
	var gotResume atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sweeps/s1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			writeEvent(w, 1, cellEvent(0))
			writeEvent(w, 2, cellEvent(1))
			// Die without a terminal event, mid-stream.
			panic(http.ErrAbortHandler)
		default:
			gotResume.Store(r.Header.Get("Last-Event-ID"))
			writeEvent(w, 3, cellEvent(2))
			writeEvent(w, 4, cellEvent(3))
			writeEvent(w, 5, slicc.SweepEvent{Type: slicc.SweepEventDone, Status: "done", Completed: 4, Total: 4})
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, WithBackoff(time.Millisecond, 10*time.Millisecond))
	st, err := c.StreamSweep(context.Background(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int
	for {
		ev, err := st.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatal(err)
		}
		seqs = append(seqs, ev.Seq)
	}
	if !reflect.DeepEqual(seqs, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("delivered seqs %v, want 1..5 with no gaps or duplicates", seqs)
	}
	if got := gotResume.Load(); got != "2" {
		t.Fatalf("reconnect sent Last-Event-ID %v, want \"2\"", got)
	}
	if conns.Load() != 2 {
		t.Fatalf("%d connections, want 2", conns.Load())
	}
}

// TestWatchSweepSurvivesServiceRestart scripts the crash contract: the
// service forgets the sweep (404 on reconnect), WatchSweep re-POSTs the
// spec, and the observer still sees every cell exactly once.
func TestWatchSweepSurvivesServiceRestart(t *testing.T) {
	spec := tinySpec()
	var posts, conns atomic.Int32
	result := &slicc.SweepResult{Cells: make([]slicc.SweepCellResult, 4), BestIndex: -1}
	for i := range result.Cells {
		result.Cells[i] = *fakeCell(i)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"id": "s1", "status": "running", "total": 4})
	})
	mux.HandleFunc("GET /v1/sweeps/s1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			// Pre-restart run: two cells, then the process dies.
			writeEvent(w, 1, cellEvent(0))
			writeEvent(w, 2, cellEvent(1))
			panic(http.ErrAbortHandler)
		case 2:
			// Post-restart service: the sweep is unknown.
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "unknown sweep"})
		default:
			// Resubmitted run replays from scratch: the first two cells are
			// store hits the client has already seen and must deduplicate.
			for i := 0; i < 4; i++ {
				ev := cellEvent(i)
				ev.StoreHit = i < 2
				writeEvent(w, i+1, ev)
			}
			writeEvent(w, 5, slicc.SweepEvent{Type: slicc.SweepEventDone, Status: "done", Completed: 4, Total: 4})
		}
	})
	mux.HandleFunc("GET /v1/sweeps/s1", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"id": "s1", "status": "done", "total": 4, "completed": 4, "result": result})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL, WithBackoff(time.Millisecond, 10*time.Millisecond))
	var mu sync.Mutex
	cells := map[int]int{}
	res, err := c.WatchSweep(context.Background(), spec, func(ev slicc.SweepEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Type == slicc.SweepEventCell {
			cells[ev.Index]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, result) {
		t.Fatalf("result %+v", res)
	}
	for i := 0; i < 4; i++ {
		if cells[i] != 1 {
			t.Fatalf("cell %d delivered %d times across the restart, want exactly once (%v)", i, cells[i], cells)
		}
	}
	if posts.Load() != 2 {
		t.Fatalf("%d spec POSTs, want 2 (initial + post-restart resubmit)", posts.Load())
	}
}

func TestSweepGoneMapsTo404(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown sweep"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)
	if _, err := c.Sweep(context.Background(), "nope", false); !errors.Is(err, ErrSweepGone) {
		t.Fatalf("GET unknown sweep: %v, want ErrSweepGone", err)
	}
	if _, err := c.ResumeSweep(context.Background(), "nope", false); !errors.Is(err, ErrSweepGone) {
		t.Fatalf("resume unknown sweep: %v, want ErrSweepGone", err)
	}
	if _, err := c.StreamSweep(context.Background(), "nope"); !errors.Is(err, ErrSweepGone) {
		t.Fatalf("stream unknown sweep: %v, want ErrSweepGone", err)
	}
	var ae *APIError
	_, err := c.Sweep(context.Background(), "nope", false)
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("ErrSweepGone lost its APIError: %v", err)
	}
}

// TestRequestIDs checks the client side of the request-ID contract: every
// request sends X-Request-ID, a pinned ID survives the round trip, and a
// failing call's error carries the ID for log correlation.
func TestRequestIDs(t *testing.T) {
	var seen atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		seen.Store(id)
		w.Header().Set("X-Request-ID", id)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, `{"error":"nope","request_id":%q}`, id)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)

	_, err := c.Stats(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want APIError, got %v", err)
	}
	auto, _ := seen.Load().(string)
	if auto == "" {
		t.Fatal("client sent no X-Request-ID")
	}
	if ae.RequestID != auto {
		t.Fatalf("error RequestID %q, header sent %q", ae.RequestID, auto)
	}
	if got := ae.Error(); !strings.Contains(got, auto) || !strings.Contains(got, "nope") {
		t.Fatalf("error string %q misses id or message", got)
	}

	// A caller-pinned ID is used verbatim.
	ctx := WithRequestID(context.Background(), "pinned-id-1")
	_, err = c.Stats(ctx)
	if errors.As(err, &ae); ae.RequestID != "pinned-id-1" {
		t.Fatalf("pinned id lost: %+v", ae)
	}
}

// TestConditionalGetAgainstRealService drives the full conditional-GET
// loop against a real handler: first poll caches the validator, second
// poll goes out with If-None-Match, comes back 304, and is surfaced as
// NotModified with the identical decoded result.
func TestConditionalGetAgainstRealService(t *testing.T) {
	c := realService(t)
	ctx := context.Background()
	sw, err := c.SubmitSweep(ctx, tinySpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Status != "done" {
		t.Fatalf("sweep %+v", sw)
	}

	first, err := c.Sweep(ctx, sw.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if first.NotModified {
		t.Fatal("first poll claims NotModified with no cached validator")
	}
	second, err := c.Sweep(ctx, sw.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !second.NotModified {
		t.Fatal("second poll of a done sweep was not served 304")
	}
	second.NotModified = first.NotModified
	if !reflect.DeepEqual(first, second) {
		t.Fatal("304 replay decodes differently from the 200 body")
	}

	// Simulations participate too.
	cfg := slicc.Config{Benchmark: slicc.TPCC1, Threads: 4, Scale: 0.05}
	sim, err := c.SubmitSimulation(ctx, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulation(ctx, sim.ID, false); err != nil {
		t.Fatal(err)
	}
	again, err := c.Simulation(ctx, sim.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if !again.NotModified {
		t.Fatal("second simulation poll was not served 304")
	}
}

// TestConditionalGetScripted pins the wire behavior: what the client
// sends, and that a 304 without a cached body never happens (the header
// is only sent when a body is cached).
func TestConditionalGetScripted(t *testing.T) {
	var inm atomic.Value
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		inm.Store(r.Header.Get("If-None-Match"))
		w.Header().Set("ETag", `"abc"`)
		if r.Header.Get("If-None-Match") == `"abc"` {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"abc","status":"done","completed":4,"total":4}`)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	ctx := context.Background()

	sw, err := c.Sweep(ctx, "abc", false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := inm.Load().(string); got != "" {
		t.Fatalf("first request sent If-None-Match %q", got)
	}
	if sw.NotModified || sw.Completed != 4 {
		t.Fatalf("first poll %+v", sw)
	}

	sw2, err := c.Sweep(ctx, "abc", false)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := inm.Load().(string); got != `"abc"` {
		t.Fatalf("second request sent If-None-Match %q", got)
	}
	if !sw2.NotModified || sw2.Completed != 4 || sw2.ID != "abc" {
		t.Fatalf("304 replay %+v", sw2)
	}
	if calls != 2 {
		t.Fatalf("%d requests", calls)
	}
}

// TestStatsMirrorsCacheFields: the typed Stats surface carries the new
// store-tier and response-cache fields end to end.
func TestStatsMirrorsCacheFields(t *testing.T) {
	eng, err := slicc.NewEngine(slicc.EngineOptions{
		Workers: 2, StoreDir: t.TempDir(), StoreMemBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Options{Timeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); eng.Close() })
	c := New(ts.URL)
	ctx := context.Background()

	sim, err := c.SubmitSimulation(ctx, slicc.Config{Benchmark: slicc.TPCC1, Threads: 4, Scale: 0.05}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulation(ctx, sim.ID, false); err != nil { // cache miss
		t.Fatal(err)
	}
	if _, err := c.Simulation(ctx, sim.ID, false); err != nil { // 304
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Store == nil {
		t.Fatal("no store stats")
	}
	if st.Store.MemEntries == 0 || st.Store.MemBytes == 0 {
		t.Fatalf("mem tier empty after a store put: %+v", st.Store)
	}
	if st.ResponseCache.Misses == 0 || st.ResponseCache.NotModified == 0 {
		t.Fatalf("response cache stats %+v", st.ResponseCache)
	}
}
