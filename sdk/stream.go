package sdk

// The sweep event stream client: an iterator over GET
// /v1/sweeps/{id}/events that hides SSE framing and reconnects. Losing a
// connection is not an error here — Next redials with Last-Event-ID set
// to the last delivered seq, the service replays the gap losslessly, and
// iteration continues as if nothing happened. Only three things end a
// stream: the terminal done/error event (then io.EOF), the context, or
// the service forgetting the sweep (ErrSweepGone, service restart — see
// WatchSweep for the recovery).

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"slicc"
)

// SweepStream iterates a sweep's events. Create one with
// Client.StreamSweep, consume with Next, and Close when abandoning the
// stream early (Next's terminal io.EOF closes it for you).
type SweepStream struct {
	c       *Client
	ctx     context.Context
	id      string
	lastSeq int

	resp *http.Response
	br   *bufio.Reader
	done bool
}

// StreamSweep opens the sweep's event stream starting from the beginning.
// The first connection is made eagerly so unknown ids fail here (wrapping
// ErrSweepGone) rather than on the first Next.
func (c *Client) StreamSweep(ctx context.Context, id string) (*SweepStream, error) {
	st := &SweepStream{c: c, ctx: ctx, id: id}
	if err := st.connect(); err != nil {
		return nil, err
	}
	return st, nil
}

// connect dials the events endpoint with the current resume position.
func (st *SweepStream) connect() error {
	url := fmt.Sprintf("%s/v1/sweeps/%s/events", st.c.baseURL, st.id)
	req, err := http.NewRequestWithContext(st.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if st.lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(st.lastSeq))
	}
	req.Header.Set("X-Request-ID", requestID(st.ctx))
	resp, err := st.c.http.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return sweepGone(decodeAPIError(resp))
	}
	st.resp = resp
	st.br = bufio.NewReader(resp.Body)
	return nil
}

// reconnect closes the broken connection and redials with backoff until
// the retry budget or the context runs out. A 404 (sweep gone) is
// returned immediately — redialing cannot fix it.
func (st *SweepStream) reconnect() error {
	st.closeConn()
	delay := st.c.backoffMin
	deadline := time.Now().Add(st.c.retryBudget)
	for {
		err := st.connect()
		if err == nil || errors.Is(err, ErrSweepGone) || st.ctx.Err() != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sdk: stream reconnect budget exhausted: %w", err)
		}
		select {
		case <-time.After(delay):
		case <-st.ctx.Done():
			return st.ctx.Err()
		}
		if delay *= 2; delay > st.c.backoffMax {
			delay = st.c.backoffMax
		}
	}
}

// Next returns the next event. After the terminal done/error event has
// been delivered, Next returns io.EOF. Dropped connections reconnect
// transparently (Last-Event-ID replay keeps delivery exactly-once);
// ErrSweepGone means the service no longer knows the sweep and the caller
// should re-POST the spec (or use WatchSweep, which does).
func (st *SweepStream) Next() (*slicc.SweepEvent, error) {
	if st.done {
		return nil, io.EOF
	}
	for {
		ev, err := readEvent(st.br)
		if err != nil {
			if st.ctx.Err() != nil {
				st.Close()
				return nil, st.ctx.Err()
			}
			// Connection lost mid-stream (server kill, slow-consumer cut,
			// network): resume from the last delivered seq.
			if rerr := st.reconnect(); rerr != nil {
				st.Close()
				return nil, rerr
			}
			continue
		}
		// The server replays from Last-Event-ID, so a duplicate seq can
		// only appear if a write raced the cut; drop anything not ahead.
		if ev.Seq <= st.lastSeq {
			continue
		}
		st.lastSeq = ev.Seq
		if ev.Type == slicc.SweepEventDone || ev.Type == slicc.SweepEventError {
			st.done = true
			st.Close()
		}
		return &ev, nil
	}
}

// Close releases the stream's connection. Safe to call more than once.
func (st *SweepStream) Close() error {
	st.closeConn()
	return nil
}

func (st *SweepStream) closeConn() {
	if st.resp != nil {
		st.resp.Body.Close()
		st.resp = nil
		st.br = nil
	}
}

// readEvent parses one SSE event (skipping ":" keep-alive comments) from
// the wire. Any read error surfaces as-is for the caller's reconnect
// logic.
func readEvent(br *bufio.Reader) (slicc.SweepEvent, error) {
	var (
		name string
		id   int
		data []byte
	)
	if br == nil {
		return slicc.SweepEvent{}, io.EOF
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return slicc.SweepEvent{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if name == "" && data == nil {
				continue
			}
			var ev slicc.SweepEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return ev, fmt.Errorf("sdk: malformed event data %q: %w", data, err)
			}
			if ev.Seq == 0 {
				ev.Seq = id
			}
			return ev, nil
		case strings.HasPrefix(line, ":"):
			// keep-alive
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "id:"):
			id, _ = strconv.Atoi(strings.TrimSpace(line[len("id:"):]))
		case strings.HasPrefix(line, "data:"):
			data = []byte(strings.TrimSpace(line[len("data:"):]))
		}
	}
}

// WatchSweep submits the spec and streams its events to onEvent until the
// sweep completes, returning the final result. It survives everything the
// service's resume contract covers:
//
//   - dropped connections: the stream redials with Last-Event-ID and the
//     server replays the gap;
//   - service restarts and evictions (ErrSweepGone, connection refused):
//     the spec is re-POSTed — same content-key id, finished cells come
//     back as store hits — and the new stream is deduplicated against
//     events already delivered, by cell index, so onEvent still sees every
//     cell and baseline exactly once;
//   - failed runs: the sweep is resumed in place (again store-hitting
//     completed cells) up to a bounded number of attempts.
//
// onEvent may be nil. Event Seq values are transport positions and restart
// with the service; identity across reconnects is the (type, index) pair.
func (c *Client) WatchSweep(ctx context.Context, spec slicc.SweepSpec, onEvent func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
	seen := map[[2]string]bool{}
	deliver := func(ev slicc.SweepEvent) {
		key := [2]string{ev.Type, strconv.Itoa(ev.Index)}
		if seen[key] {
			return
		}
		seen[key] = true
		if onEvent != nil {
			onEvent(ev)
		}
	}

	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sw, err := c.SubmitSweep(ctx, spec, false)
		if err != nil {
			// The service may still be coming back up; retry on the same
			// backoff budget streams use.
			if failures++; failures > c.watchRetries {
				return nil, err
			}
			if serr := sleepCtx(ctx, c.backoffMax); serr != nil {
				return nil, serr
			}
			continue
		}
		res, werr := c.watchOnce(ctx, sw.ID, deliver)
		switch {
		case werr == nil:
			return res, nil
		case errors.Is(werr, ErrSweepGone):
			// Restart/eviction: loop re-POSTs the spec. Not counted as a
			// failure — the run itself didn't fail.
			continue
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			if failures++; failures > c.watchRetries {
				return nil, werr
			}
			if serr := sleepCtx(ctx, c.backoffMin); serr != nil {
				return nil, serr
			}
		}
	}
}

// watchOnce streams one submission to completion and fetches its final
// result. A terminal "error" event surfaces as an error (the outer loop
// decides whether to resume).
func (c *Client) watchOnce(ctx context.Context, id string, deliver func(slicc.SweepEvent)) (*slicc.SweepResult, error) {
	st, err := c.StreamSweep(ctx, id)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for {
		ev, err := st.Next()
		if err != nil {
			return nil, err
		}
		switch ev.Type {
		case slicc.SweepEventCell, slicc.SweepEventBaseline:
			deliver(*ev)
		case slicc.SweepEventError:
			return nil, fmt.Errorf("sweep failed: %s", ev.Error)
		case slicc.SweepEventDone:
			sw, err := c.Sweep(ctx, id, false)
			if err != nil {
				return nil, err
			}
			if sw.Result == nil {
				return nil, fmt.Errorf("sweep %s reported done without a result", id)
			}
			return sw.Result, nil
		}
	}
}

// sleepCtx sleeps d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
