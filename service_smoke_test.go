package slicc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServiceSmoke is the end-to-end service check CI runs: build the real
// sliccd binary, boot it on a random port with a persistent store, submit a
// quick simulation, restart the server, submit the identical simulation
// again, and assert the second response was served as a store hit (zero
// executions in the second process). Skipped under -short because it shells
// out to `go build`.
func TestServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the sliccd binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sliccd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sliccd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sliccd: %v\n%s", err, out)
	}
	storeDir := filepath.Join(dir, "store")
	body := `{"Benchmark":"tpcc1","Policy":"base","Threads":8,"Seed":3,"Scale":0.1}`

	type stats struct {
		Engine EngineStats `json:"engine"`
	}
	submit := func(t *testing.T, base string) (simStatus string, st stats) {
		t.Helper()
		resp, err := http.Post(base+"/v1/simulations?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sim struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil {
			t.Fatal(err)
		}
		sresp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer sresp.Body.Close()
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return sim.Status, st
	}

	// First server: executes and persists.
	base1, stop1 := bootSliccd(t, bin, storeDir)
	status, st := submit(t, base1)
	if status != "done" {
		t.Fatalf("first submission status %q", status)
	}
	if st.Engine.SimsExecuted != 1 || st.Engine.StoreHits != 0 || st.Engine.StorePuts != 1 {
		t.Fatalf("first server stats %+v", st.Engine)
	}
	stop1()

	// Second server, same store: must serve from disk without executing.
	base2, stop2 := bootSliccd(t, bin, storeDir)
	defer stop2()
	status, st = submit(t, base2)
	if status != "done" {
		t.Fatalf("second submission status %q", status)
	}
	if st.Engine.SimsExecuted != 0 || st.Engine.StoreHits != 1 {
		t.Fatalf("second server stats %+v, want a pure store hit", st.Engine)
	}
}

// bootSliccd starts the built binary on a random port and returns its base
// URL and a graceful-stop function.
func bootSliccd(t *testing.T, bin, storeDir string) (baseURL string, stop func()) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-store", storeDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("sliccd exit: %v", err)
			}
		case <-time.After(20 * time.Second):
			_ = cmd.Process.Kill()
			t.Error("sliccd did not drain within 20s")
		}
	}
	t.Cleanup(stop)

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
		// Drain so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			t.Fatal("sliccd exited before announcing its address")
		}
		const prefix = "sliccd listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected startup line %q", line)
		}
		addr := strings.TrimPrefix(line, prefix)
		return fmt.Sprintf("http://%s", addr), stop
	case <-time.After(20 * time.Second):
		t.Fatal("sliccd did not start within 20s")
	}
	panic("unreachable")
}
