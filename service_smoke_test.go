package slicc_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"slicc"
)

// TestServiceSmoke is the end-to-end service check CI runs: build the real
// sliccd binary, boot it on a random port with a persistent store, submit a
// quick simulation, restart the server, submit the identical simulation
// again, and assert the second response was served as a store hit (zero
// executions in the second process). Skipped under -short because it shells
// out to `go build`.
func TestServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the sliccd binary")
	}
	dir := t.TempDir()
	bin := buildSliccd(t, dir)
	storeDir := filepath.Join(dir, "store")
	body := `{"Benchmark":"tpcc1","Policy":"base","Threads":8,"Seed":3,"Scale":0.1}`

	type stats struct {
		Engine slicc.EngineStats `json:"engine"`
	}
	submit := func(t *testing.T, base string) (simStatus string, st stats) {
		t.Helper()
		resp, err := http.Post(base+"/v1/simulations?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sim struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil {
			t.Fatal(err)
		}
		sresp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer sresp.Body.Close()
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return sim.Status, st
	}

	// First server: executes and persists.
	p1 := bootSliccd(t, bin, "-addr", "127.0.0.1:0", "-store", storeDir)
	status, st := submit(t, p1.base)
	if status != "done" {
		t.Fatalf("first submission status %q", status)
	}
	if st.Engine.SimsExecuted != 1 || st.Engine.StoreHits != 0 || st.Engine.StorePuts != 1 {
		t.Fatalf("first server stats %+v", st.Engine)
	}
	p1.stop()

	// Second server, same store: must serve from disk without executing.
	p2 := bootSliccd(t, bin, "-addr", "127.0.0.1:0", "-store", storeDir)
	defer p2.stop()
	status, st = submit(t, p2.base)
	if status != "done" {
		t.Fatalf("second submission status %q", status)
	}
	if st.Engine.SimsExecuted != 0 || st.Engine.StoreHits != 1 {
		t.Fatalf("second server stats %+v, want a pure store hit", st.Engine)
	}
}

// buildSliccd compiles the real sliccd binary into dir.
func buildSliccd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "sliccd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sliccd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sliccd: %v\n%s", err, out)
	}
	return bin
}

// sliccdProc is one running sliccd process under test control: stop it
// gracefully (asserting a clean drain), or kill it dead to simulate a
// crash.
type sliccdProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string // http://host:port

	waitOnce sync.Once
	waitErr  error
}

// wait reaps the process exactly once, however it ended.
func (p *sliccdProc) wait() error {
	p.waitOnce.Do(func() {
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case p.waitErr = <-done:
		case <-time.After(20 * time.Second):
			_ = p.cmd.Process.Kill()
			p.waitErr = <-done
			p.t.Error("sliccd did not exit within 20s")
		}
	})
	return p.waitErr
}

// stop shuts the server down gracefully (SIGTERM) and asserts it drained
// cleanly.
func (p *sliccdProc) stop() {
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	if err := p.wait(); err != nil {
		p.t.Errorf("sliccd exit: %v", err)
	}
}

// kill crashes the server (SIGKILL): no drain, no flush, no goodbye. The
// kernel releases its listening port, so a successor can bind the same
// address.
func (p *sliccdProc) kill() {
	_ = p.cmd.Process.Kill()
	_ = p.wait() // "signal: killed" is the expected outcome
}

// bootSliccd starts the built binary with the given flags (callers pass
// -addr and -store explicitly) and waits for it to announce its address.
// Cleanup reaps the process however the test left it.
func bootSliccd(t *testing.T, bin string, args ...string) *sliccdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &sliccdProc{t: t, cmd: cmd}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = p.wait()
	})

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
		// Drain so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			t.Fatal("sliccd exited before announcing its address")
		}
		const prefix = "sliccd listening on "
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("unexpected startup line %q", line)
		}
		p.base = fmt.Sprintf("http://%s", strings.TrimPrefix(line, prefix))
		return p
	case <-time.After(20 * time.Second):
		t.Fatal("sliccd did not start within 20s")
	}
	panic("unreachable")
}
