// Package slicc is a from-scratch reproduction of "SLICC: Self-Assembly of
// Instruction Cache Collectives for OLTP Workloads" (Atta, Tözün, Ailamaki,
// Moshovos — MICRO 2012).
//
// SLICC is a hardware thread-migration policy that spreads the instruction
// footprint of OLTP transactions across many private L1-I caches: each
// cache holds one code segment, threads migrate to the core whose cache
// holds the code they are about to execute, and similar transactions
// pipeline behind each other so one thread's fetches prefetch for the rest.
//
// This module contains everything the paper's evaluation needs, implemented
// in pure Go with no external dependencies:
//
//   - a trace-driven multicore simulator (cores, private L1s, shared NUCA
//     L2, 2D-torus interconnect, MESI-style L1-D directory, hardware thread
//     migration),
//   - cache models with the LRU/LIP/BIP/DIP/SRRIP/BRRIP/DRRIP replacement
//     policies of Figure 2 and 3C miss classification for Figure 1,
//   - counting partial-address bloom filters (SLICC's cache signatures),
//   - synthetic TPC-C, TPC-E and MapReduce workload generators calibrated
//     to the memory behaviour Section 2 of the paper measures, plus three
//     scenario families beyond the paper — Phased, Skewed and
//     Microservice (docs/WORKLOADS.md),
//   - a documented binary trace format (docs/TRACES.md) with streaming
//     whole-workload containers: capture any workload with cmd/tracegen
//     -dump-all and replay it via Config.TracePath in constant memory,
//     exactly as the paper replays its PIN-recorded Shore-MT traces,
//   - SLICC itself in three variants (type-oblivious, SLICC-SW, SLICC-Pp
//     with a scout core) plus the baseline scheduler, a next-line
//     prefetcher and the paper's PIF upper bound,
//   - an experiment harness regenerating every table and figure,
//   - a declarative parameter-sweep subsystem (Engine.Sweep, SweepSpec):
//     declare a study as JSON axes over workloads x machines x policies x
//     thresholds and run the expanded cross-product with dedup, best-cell
//     selection and CSV export,
//   - a persistent content-addressed result store (EngineOptions.StoreDir):
//     simulations memoize across processes, so a warm store re-renders the
//     whole evaluation without executing anything, and
//   - sliccd (cmd/sliccd), an HTTP service over a shared Engine — submit
//     configs, poll results, render experiments (docs/SERVICE.md).
//
// The quickest way in:
//
//	base, _ := slicc.Run(slicc.Config{Benchmark: slicc.TPCC1, Policy: slicc.Baseline})
//	fast, _ := slicc.Run(slicc.Config{Benchmark: slicc.TPCC1, Policy: slicc.SLICCSW})
//	fmt.Printf("speedup %.2fx, I-MPKI %.1f -> %.1f\n",
//		base.Cycles/fast.Cycles, base.IMPKI, fast.IMPKI)
//
// See DESIGN.md for the system inventory and the substitutions made for the
// parts of the paper's infrastructure that are not available (PIN traces of
// Shore-MT, the Zesto simulator), and EXPERIMENTS.md for paper-vs-measured
// results of every experiment.
package slicc

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"slicc/internal/prefetch"
	"slicc/internal/runner"
	"slicc/internal/sim"
	islicc "slicc/internal/slicc"
	"slicc/internal/workload"
)

// Benchmark selects one of the paper's workloads (Table 1).
type Benchmark int

// Benchmarks. The first four are the paper's Table 1 workloads; the rest
// are synthetic scenario families beyond the paper (docs/WORKLOADS.md).
const (
	// TPCC1 is TPC-C with 1 warehouse (84MB database).
	TPCC1 Benchmark = iota
	// TPCC10 is TPC-C with 10 warehouses (1GB database).
	TPCC10
	// TPCE is TPC-E with 1000 customers (20GB database).
	TPCE
	// MapReduce is the CloudSuite text-analytics control workload.
	MapReduce
	// Phased alternates between large disjoint code phases with bursty
	// cross-phase excursions, churning SLICC's learned cache signatures.
	Phased
	// Skewed is a multi-tenant scenario with a Zipfian transaction mix:
	// one hot tenant dominates and a long tail supplies stray threads.
	Skewed
	// Microservice models RPC fan-out: many services with small individual
	// footprints calling into each other's stubs and a shared runtime.
	Microservice
)

// String returns the benchmark's display name.
func (b Benchmark) String() string { return b.kind().String() }

func (b Benchmark) kind() workload.Kind {
	switch b {
	case TPCC1:
		return workload.TPCC1
	case TPCC10:
		return workload.TPCC10
	case TPCE:
		return workload.TPCE
	case MapReduce:
		return workload.MapReduce
	case Phased:
		return workload.Phased
	case Skewed:
		return workload.Skewed
	case Microservice:
		return workload.Microservice
	}
	panic(fmt.Sprintf("slicc: unknown benchmark %d", int(b)))
}

// Benchmarks lists all workloads: Table 1 order, then the scenario
// extensions.
func Benchmarks() []Benchmark {
	return []Benchmark{TPCC1, TPCC10, TPCE, MapReduce, Phased, Skewed, Microservice}
}

// benchmarkTokens are the canonical machine-readable benchmark names, used
// by the CLIs, the JSON encoding and the sliccd API.
var benchmarkTokens = map[string]Benchmark{
	"tpcc1":        TPCC1,
	"tpcc10":       TPCC10,
	"tpce":         TPCE,
	"mapreduce":    MapReduce,
	"phased":       Phased,
	"skewed":       Skewed,
	"microservice": Microservice,
}

// Token returns the benchmark's canonical machine-readable name (the JSON
// form; String returns the display name).
func (b Benchmark) Token() string {
	for tok, v := range benchmarkTokens {
		if v == b {
			return tok
		}
	}
	return fmt.Sprintf("benchmark(%d)", int(b))
}

// ParseBenchmark resolves a benchmark name: a canonical token ("tpcc1",
// "tpcc10", "tpce", "mapreduce", "phased", "skewed", "microservice") or a
// display name ("TPC-C-1"), case-insensitively.
func ParseBenchmark(s string) (Benchmark, error) {
	ls := strings.ToLower(s)
	if b, ok := benchmarkTokens[ls]; ok {
		return b, nil
	}
	for _, b := range Benchmarks() {
		if strings.EqualFold(s, b.String()) {
			return b, nil
		}
	}
	return 0, fmt.Errorf("slicc: unknown benchmark %q (have %s)", s, strings.Join(BenchmarkNames(), ", "))
}

// BenchmarkNames lists the canonical benchmark tokens in Benchmarks order.
func BenchmarkNames() []string {
	names := make([]string, 0, len(benchmarkTokens))
	for _, b := range Benchmarks() {
		names = append(names, b.Token())
	}
	return names
}

// MarshalText encodes the benchmark as its canonical token, so Config and
// Result marshal to JSON with readable workload names.
func (b Benchmark) MarshalText() ([]byte, error) {
	if int(b) < 0 || b > Microservice {
		return nil, fmt.Errorf("slicc: unknown benchmark %d", int(b))
	}
	return []byte(b.Token()), nil
}

// UnmarshalText decodes a benchmark token or display name.
func (b *Benchmark) UnmarshalText(text []byte) error {
	v, err := ParseBenchmark(string(text))
	if err != nil {
		return err
	}
	*b = v
	return nil
}

// Policy selects the scheduling/prefetching configuration to evaluate
// (the bars of Figure 11).
type Policy int

// Policies.
const (
	// Baseline is the conventional OS scheduler: no migration, threads
	// run to completion on the core they start on.
	Baseline Policy = iota
	// NextLine is the baseline plus a next-line instruction prefetcher.
	NextLine
	// SLICC is the type-oblivious migration policy (Section 4.1).
	SLICC
	// SLICCPp adds hardware type detection on a scout core (Section 4.3).
	SLICCPp
	// SLICCSW receives transaction types from the software layer.
	SLICCSW
	// PIF is the paper's upper-bound model of the Proactive Instruction
	// Fetch prefetcher: a 512KB L1-I retaining 32KB latency.
	PIF
	// StreamPrefetch is a finite-storage PIF-style temporal stream
	// prefetcher (extension beyond the paper).
	StreamPrefetch
	// STEPS is a software time-multiplexing baseline after Harizopoulos &
	// Ailamaki: same-type threads share chunks by context switching on one
	// core (the paper's related-work counterpart, provided as an
	// extension).
	STEPS
)

var policyNames = [...]string{"Base", "Next-Line", "SLICC", "SLICC-Pp", "SLICC-SW", "PIF", "Stream", "STEPS"}

// String returns the policy's display name.
func (p Policy) String() string {
	if p < 0 || int(p) >= len(policyNames) {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return policyNames[p]
}

// Policies lists all evaluated policies in Figure 11 order, followed by
// the extensions.
func Policies() []Policy {
	return []Policy{Baseline, NextLine, SLICC, SLICCPp, SLICCSW, PIF, StreamPrefetch, STEPS}
}

// policyTokens are the canonical machine-readable policy names, used by the
// CLIs, the JSON encoding and the sliccd API.
var policyTokens = map[string]Policy{
	"base":     Baseline,
	"nextline": NextLine,
	"slicc":    SLICC,
	"slicc-pp": SLICCPp,
	"slicc-sw": SLICCSW,
	"pif":      PIF,
	"stream":   StreamPrefetch,
	"steps":    STEPS,
}

// Token returns the policy's canonical machine-readable name (the JSON
// form; String returns the display name).
func (p Policy) Token() string {
	for tok, v := range policyTokens {
		if v == p {
			return tok
		}
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name: a canonical token ("base",
// "nextline", "slicc", "slicc-pp", "slicc-sw", "pif", "stream", "steps")
// or a display name ("SLICC-SW"), case-insensitively.
func ParsePolicy(s string) (Policy, error) {
	ls := strings.ToLower(s)
	if p, ok := policyTokens[ls]; ok {
		return p, nil
	}
	for _, p := range Policies() {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("slicc: unknown policy %q (have %s)", s, strings.Join(PolicyNames(), ", "))
}

// PolicyNames lists the canonical policy tokens in Figure 11 order.
func PolicyNames() []string {
	names := make([]string, 0, len(policyTokens))
	for _, p := range Policies() {
		names = append(names, p.Token())
	}
	return names
}

// MarshalText encodes the policy as its canonical token.
func (p Policy) MarshalText() ([]byte, error) {
	if int(p) < 0 || p > STEPS {
		return nil, fmt.Errorf("slicc: unknown policy %d", int(p))
	}
	return []byte(p.Token()), nil
}

// UnmarshalText decodes a policy token or display name.
func (p *Policy) UnmarshalText(text []byte) error {
	v, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// Params are SLICC's tuning thresholds (Section 5.2). The zero value means
// the paper's defaults: fill-up_t=256, matched_t=4, dilution_t=10 and a
// 2K-bit bloom signature.
type Params struct {
	FillUpT   int
	MatchedT  int
	DilutionT int // -1 disables the dilution gate (the Figure 7 setting)
	BloomBits int
	// ExactSearch answers remote segment searches from actual cache tags
	// instead of bloom signatures.
	ExactSearch bool
	// DisableIdleFallback removes migration to idle cores (ablation).
	DisableIdleFallback bool
	// YieldOnStay combines SLICC with STEPS-style local yielding when a
	// migration evaluation finds no destination (the paper's future-work
	// combination; extension).
	YieldOnStay bool
}

func (p Params) toInternal(v islicc.Variant) islicc.Config {
	cfg := islicc.DefaultConfig(v)
	if p.FillUpT != 0 {
		cfg.FillUpT = p.FillUpT
	}
	if p.MatchedT != 0 {
		cfg.MatchedT = p.MatchedT
	}
	switch {
	case p.DilutionT < 0:
		cfg.DilutionT = 0
	case p.DilutionT > 0:
		cfg.DilutionT = p.DilutionT
	}
	if p.BloomBits != 0 {
		cfg.BloomBits = p.BloomBits
	}
	cfg.ExactSearch = p.ExactSearch
	cfg.DisableIdleFallback = p.DisableIdleFallback
	cfg.YieldOnStay = p.YieldOnStay
	return cfg
}

// Config describes one simulation.
type Config struct {
	// Benchmark and Policy select the workload and scheduler.
	Benchmark Benchmark
	Policy    Policy
	// TracePath, when non-empty, replays the recorded trace container at
	// this path (written by `tracegen -dump-all` or trace.WriteWorkload)
	// instead of synthesizing a benchmark. Setting a non-zero Benchmark
	// alongside it is an error; Benchmark's zero value (TPCC1) is
	// indistinguishable from unset and is simply ignored, as are
	// Threads/Seed/Scale — the container fixes the workload completely,
	// and Result.Benchmark is meaningless for trace runs. Replaying a capture of a synthetic workload
	// produces results identical to running that workload directly. The
	// trace is streamed with constant memory, and the engine's dedup keys
	// on the file's content digest, so identical traces under different
	// names still simulate once. See docs/TRACES.md.
	TracePath string
	// Threads is the number of transactions/tasks (default: 128 for OLTP,
	// 300 for MapReduce — the paper's task counts scaled for practicality).
	Threads int
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Scale multiplies per-transaction work (default 1).
	Scale float64
	// Cores is the core count (default 16; must form a torus).
	Cores int
	// L1IKB / L1DKB size the private caches in KB (default 32).
	L1IKB, L1DKB int
	// SLICC tunes the SLICC policies; ignored for others.
	SLICC Params
	// Classify enables 3C miss classification (Figure 1 style results).
	Classify bool
	// TrackReuse enables the Figure 3 reuse breakdown in the result.
	TrackReuse bool
	// EnableTLB adds 64-entry I-/D-TLBs and reports their miss rates
	// (the paper's Section 5.5 side observation).
	EnableTLB bool
	// LogEvents records every migration/context switch in Result.Events.
	LogEvents bool
	// MaxInstructions aborts pathological runs (0 = unlimited).
	MaxInstructions uint64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.L1IKB == 0 {
		c.L1IKB = 32
	}
	if c.L1DKB == 0 {
		c.L1DKB = 32
	}
	return c
}

// ReuseBreakdown mirrors Figure 3's access classes.
type ReuseBreakdown struct {
	Single, Few, Most float64
}

// Result holds a run's metrics.
type Result struct {
	Benchmark Benchmark
	Policy    Policy
	// TracePath echoes the replayed container for trace-driven runs
	// (empty for synthetic runs; Benchmark is then meaningless).
	TracePath string

	Instructions uint64
	Cycles       float64
	IMPKI        float64
	DMPKI        float64
	// Compulsory/Capacity/Conflict MPKI splits (zero unless Classify).
	ICompulsoryMPKI, ICapacityMPKI, IConflictMPKI float64
	DCompulsoryMPKI, DCapacityMPKI, DConflictMPKI float64

	Migrations        uint64
	ContextSwitches   uint64
	InstrPerMigration float64
	// TxnLatencyP50/P95 are transaction service-time percentiles (cycles
	// from first dispatch to completion).
	TxnLatencyP50, TxnLatencyP95 float64
	// ITLBMPKI/DTLBMPKI are zero unless EnableTLB.
	ITLBMPKI, DTLBMPKI float64
	BPKI               float64
	Invalidations      uint64
	ThreadsFinished    int
	Aborted            bool

	// ReuseGlobal / ReusePerType are filled when TrackReuse is set.
	ReuseGlobal, ReusePerType ReuseBreakdown

	// Events is the migration/context-switch log (nil unless LogEvents).
	Events []SchedulingEvent
}

// SchedulingEvent is one thread movement: a cross-core migration or (for
// STEPS-style policies) a same-core context switch.
type SchedulingEvent struct {
	Cycle    float64
	ThreadID int
	From, To int
	Switch   bool
}

// MarshalJSON encodes the result with one wire-format accommodation: JSON
// has no representation for non-finite floats, so InstrPerMigration — +Inf
// for runs with zero migrations — marshals as 0 there (Migrations itself
// disambiguates). Every other field is finite by construction.
func (r Result) MarshalJSON() ([]byte, error) {
	type wire Result // drops the method set, avoiding recursion
	w := wire(r)
	if math.IsInf(w.InstrPerMigration, 0) || math.IsNaN(w.InstrPerMigration) {
		w.InstrPerMigration = 0
	}
	return json.Marshal(w)
}

// Speedup returns base.Cycles / r.Cycles.
func (r Result) Speedup(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return base.Cycles / r.Cycles
}

// Key returns the stable content key of the simulation this Config
// describes: a hex SHA-256 over a versioned canonical encoding of the
// defaulted configuration. Two configs that spell the same simulation —
// including defaulted versus explicit fields — share a key; any semantic
// difference changes it. sliccd uses Key as the job id that coalesces
// identical submissions. Note that for trace-driven configs the key covers
// the TracePath string, not the file's contents; the engine's execution
// layer still dedups by content digest underneath.
func (c Config) Key() (string, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return "", err
	}
	if c.TracePath != "" {
		// The container fixes the workload completely: Benchmark, Threads,
		// Seed and Scale are documented as ignored for trace runs, so the
		// canonical spelling zeroes them — differently spelled configs of
		// the same replay share one key.
		c.Benchmark, c.Threads, c.Seed, c.Scale = 0, 0, 0, 0
	}
	// Events never feed the key: LogEvents changes the result payload, and
	// is part of the marshalled struct, which is what we want — a config
	// requesting events is a different simulation product.
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("slicc: encoding config key: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("slicc-config-v1\n"))
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// validate rejects configurations the simulator cannot run.
func (c Config) validate() error {
	if c.Threads < 0 || c.Scale < 0 {
		return fmt.Errorf("slicc: negative Threads or Scale")
	}
	if c.TracePath != "" && c.Benchmark != 0 {
		return fmt.Errorf("slicc: TracePath and Benchmark are mutually exclusive")
	}
	if int(c.Benchmark) < 0 || c.Benchmark > Microservice {
		return fmt.Errorf("slicc: unknown benchmark %d", int(c.Benchmark))
	}
	if int(c.Policy) < 0 || c.Policy > STEPS {
		return fmt.Errorf("slicc: unknown policy %d", int(c.Policy))
	}
	return nil
}

// job translates a validated, defaulted Config into a declarative runner
// job. Policies become data (PolicySpec), which is what lets the runner
// deduplicate identical simulations by content.
func (c Config) job() runner.Job {
	wcfg := workload.Config{
		Kind:    c.Benchmark.kind(),
		Threads: c.Threads,
		Seed:    c.Seed,
		Scale:   c.Scale,
	}
	if c.TracePath != "" {
		// A recorded workload is fully specified by the container; the
		// runner fills in the content digest that keys its memoization.
		wcfg = workload.Config{TracePath: c.TracePath}
	}

	mcfg := sim.Config{
		Cores:           c.Cores,
		TrackReuse:      c.TrackReuse,
		MaxInstructions: c.MaxInstructions,
		EnableTLB:       c.EnableTLB,
		LogEvents:       c.LogEvents,
	}
	mcfg.L1I.SizeBytes = c.L1IKB * 1024
	mcfg.L1D.SizeBytes = c.L1DKB * 1024
	mcfg.L1I.Classify = c.Classify
	mcfg.L1D.Classify = c.Classify

	spec := runner.PolicySpec{Kind: runner.Baseline}
	switch c.Policy {
	case NextLine:
		spec.Kind = runner.NextLine
	case SLICC:
		spec = runner.PolicySpec{Kind: runner.SLICC, SLICC: c.SLICC.toInternal(islicc.Oblivious)}
	case SLICCPp:
		spec = runner.PolicySpec{Kind: runner.SLICC, SLICC: c.SLICC.toInternal(islicc.Pp)}
	case SLICCSW:
		spec = runner.PolicySpec{Kind: runner.SLICC, SLICC: c.SLICC.toInternal(islicc.SW)}
	case PIF:
		mcfg.L1I = prefetch.PIFUpperBoundL1I(mcfg.L1I)
		mcfg.L1I.Classify = c.Classify
	case StreamPrefetch:
		spec.Kind = runner.Stream
	case STEPS:
		spec.Kind = runner.STEPS
	}
	return runner.Job{Workload: wcfg, Machine: mcfg, Policy: spec}
}

// result converts a runner result back into the public form.
func (c Config) result(rr runner.Result) Result {
	r := rr.Sim
	ki := float64(r.Instructions) / 1000
	if ki == 0 {
		ki = 1
	}
	out := Result{
		Benchmark:         c.Benchmark,
		Policy:            c.Policy,
		TracePath:         c.TracePath,
		Instructions:      r.Instructions,
		Cycles:            r.Cycles,
		IMPKI:             r.IMPKI(),
		DMPKI:             r.DMPKI(),
		ICompulsoryMPKI:   float64(r.ICompulsory) / ki,
		ICapacityMPKI:     float64(r.ICapacity) / ki,
		IConflictMPKI:     float64(r.IConflict) / ki,
		DCompulsoryMPKI:   float64(r.DCompulsory) / ki,
		DCapacityMPKI:     float64(r.DCapacity) / ki,
		DConflictMPKI:     float64(r.DConflict) / ki,
		Migrations:        r.Migrations,
		ContextSwitches:   r.ContextSwitches,
		TxnLatencyP50:     r.LatencyPercentile(50),
		TxnLatencyP95:     r.LatencyPercentile(95),
		InstrPerMigration: r.InstrPerMigration(),
		ITLBMPKI:          r.ITLBMPKI(),
		DTLBMPKI:          r.DTLBMPKI(),
		BPKI:              r.BPKI(),
		Invalidations:     r.Invalidations,
		ThreadsFinished:   r.ThreadsFinished,
		Aborted:           r.Aborted,
	}
	if c.LogEvents {
		out.Events = make([]SchedulingEvent, len(r.Events))
		for i, e := range r.Events {
			out.Events[i] = SchedulingEvent{Cycle: e.Cycle, ThreadID: e.ThreadID, From: e.From, To: e.To, Switch: e.Switch}
		}
	}
	if c.TrackReuse {
		g, p := rr.ReuseGlobal, rr.ReusePerType
		out.ReuseGlobal = ReuseBreakdown{g.Single, g.Few, g.Most}
		out.ReusePerType = ReuseBreakdown{p.Single, p.Few, p.Most}
	}
	return out
}

// Run executes one simulation to completion.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the simulation stops promptly and ctx.Err() is returned.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	rs, err := runner.New(runner.Options{Workers: 1}).Run(ctx, []runner.Job{cfg.job()})
	if err != nil {
		return Result{}, err
	}
	return cfg.result(rs[0]), nil
}

// Compare runs the same benchmark under several policies and returns
// results in order, all against identical workloads. The simulations run
// in parallel (up to GOMAXPROCS at a time); results are deterministic and
// independent of the parallelism.
func Compare(base Config, policies ...Policy) ([]Result, error) {
	return CompareContext(context.Background(), base, policies...)
}

// CompareContext is Compare with cooperative cancellation. The workload is
// synthesized once and shared; identical policy entries simulate once.
func CompareContext(ctx context.Context, base Config, policies ...Policy) ([]Result, error) {
	return compareOn(ctx, runner.New(runner.Options{}), base, policies...)
}

// compareOn runs the comparison batch on the given pool (a fresh private
// one for the package-level entry points, the engine's shared memoizing
// pool for Engine.Compare).
func compareOn(ctx context.Context, pool *runner.Pool, base Config, policies ...Policy) ([]Result, error) {
	cfgs := make([]Config, len(policies))
	jobs := make([]runner.Job, len(policies))
	for i, p := range policies {
		cfg := base
		cfg.Policy = p
		cfg = cfg.withDefaults()
		if err := cfg.validate(); err != nil {
			return nil, fmt.Errorf("slicc: policy %v: %w", p, err)
		}
		cfgs[i] = cfg
		jobs[i] = cfg.job()
	}
	rs, err := pool.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(rs))
	for i, rr := range rs {
		results[i] = cfgs[i].result(rr)
	}
	return results, nil
}

// HardwareCostBytes returns SLICC's per-core storage budget in bytes for
// the given parameters (Table 3: 966 bytes for the paper's configuration
// with team support).
func HardwareCostBytes(p Params, cores int, teamSupport bool) int {
	v := islicc.Oblivious
	if teamSupport {
		v = islicc.SW
	}
	return islicc.HardwareCost(p.toInternal(v), cores).TotalBytes()
}
