package slicc

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"slicc/internal/workload"
)

// skipShort skips multi-simulation tests under -short; single-sim API
// coverage still runs.
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-simulation test (run without -short)")
	}
}

// small returns a fast configuration for API tests.
func small(b Benchmark, p Policy) Config {
	return Config{Benchmark: b, Policy: p, Threads: 24, Seed: 3, Scale: 0.3}
}

func TestRunBaseline(t *testing.T) {
	r, err := Run(small(TPCC1, Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if r.ThreadsFinished != 24 {
		t.Fatalf("finished %d/24", r.ThreadsFinished)
	}
	if r.IMPKI < 15 || r.IMPKI > 60 {
		t.Fatalf("baseline I-MPKI %.1f out of OLTP range", r.IMPKI)
	}
	if r.Migrations != 0 {
		t.Fatal("baseline migrated")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Benchmark: Benchmark(9)}); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if _, err := Run(Config{Policy: Policy(9)}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := Run(Config{Threads: -1}); err == nil {
		t.Fatal("negative threads accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	skipShort(t)
	a, err := Run(small(TPCE, SLICCSW))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small(TPCE, SLICCSW))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IMPKI != b.IMPKI || a.Migrations != b.Migrations {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestCompareOrdering(t *testing.T) {
	skipShort(t)
	rs, err := Compare(small(TPCC1, Baseline), Baseline, SLICCSW)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	base, sw := rs[0], rs[1]
	if sw.IMPKI >= base.IMPKI {
		t.Fatalf("SLICC-SW I-MPKI %.1f not below baseline %.1f", sw.IMPKI, base.IMPKI)
	}
	if sw.Speedup(base) < 1.0 {
		t.Fatalf("SLICC-SW speedup %.3f < 1", sw.Speedup(base))
	}
	if sw.Migrations == 0 || sw.BPKI <= 0 {
		t.Fatal("SLICC-SW did not migrate/search")
	}
}

func TestClassification(t *testing.T) {
	cfg := small(TPCC1, Baseline)
	cfg.Classify = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.ICompulsoryMPKI + r.ICapacityMPKI + r.IConflictMPKI
	if diff := sum - r.IMPKI; diff > 0.01 || diff < -0.01 {
		t.Fatalf("3C classes (%.2f) do not sum to I-MPKI (%.2f)", sum, r.IMPKI)
	}
}

func TestTrackReuse(t *testing.T) {
	cfg := small(TPCC1, SLICCSW)
	cfg.TrackReuse = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := r.ReusePerType.Single + r.ReusePerType.Few + r.ReusePerType.Most
	if total < 0.99 || total > 1.01 {
		t.Fatalf("per-type reuse shares sum to %f", total)
	}
	if r.ReusePerType.Most < r.ReuseGlobal.Most {
		t.Fatal("per-type sharing below global sharing")
	}
}

func TestPIFConfig(t *testing.T) {
	skipShort(t)
	cfg := small(TPCC1, PIF)
	cfg.Classify = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := small(TPCC1, Baseline)
	bcfg.Classify = true
	base, err := Run(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	// The 512KB upper bound eliminates capacity misses entirely; at this
	// tiny scale compulsory misses dominate both configurations, so total
	// MPKI is only required to improve.
	if r.ICapacityMPKI > 0.5 {
		t.Fatalf("PIF upper bound still has %.2f capacity MPKI", r.ICapacityMPKI)
	}
	if r.IMPKI >= base.IMPKI {
		t.Fatalf("PIF I-MPKI %.1f not below baseline %.1f", r.IMPKI, base.IMPKI)
	}
}

func TestMaxInstructions(t *testing.T) {
	cfg := small(TPCC1, Baseline)
	cfg.MaxInstructions = 5000
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aborted {
		t.Fatal("run not aborted at instruction cap")
	}
}

func TestHardwareCostBytes(t *testing.T) {
	if got := HardwareCostBytes(Params{}, 16, true); got != 966 {
		t.Fatalf("cost = %d bytes, want 966 (Table 3)", got)
	}
	if got := HardwareCostBytes(Params{}, 16, false); got >= 966 {
		t.Fatal("oblivious cost should be below the team-supported cost")
	}
}

func TestPolicyAndBenchmarkStrings(t *testing.T) {
	if SLICCSW.String() != "SLICC-SW" || PIF.String() != "PIF" {
		t.Fatal("policy names wrong")
	}
	if TPCC10.String() != "TPC-C-10" {
		t.Fatal("benchmark name wrong")
	}
	if Policy(99).String() != "Policy(99)" {
		t.Fatal("out-of-range policy name")
	}
	if len(Policies()) != 8 || len(Benchmarks()) != 7 {
		t.Fatal("enumerations wrong")
	}
	// Public benchmark tokens must stay in lockstep with the workload
	// package's kind tokens.
	for _, b := range Benchmarks() {
		if k, err := workload.ParseKind(b.Token()); err != nil || k != b.kind() {
			t.Fatalf("benchmark token %q does not round-trip through workload.ParseKind (%v, %v)", b.Token(), k, err)
		}
	}
}

func TestExperimentDispatch(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		tabs, err := Experiment(id, true, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(tabs) != 1 || len(tabs[0].Rows) == 0 {
			t.Fatalf("%s returned empty table", id)
		}
		var buf bytes.Buffer
		tabs[0].Format(&buf)
		if !strings.Contains(buf.String(), "##") {
			t.Fatal("Format produced no heading")
		}
	}
	if _, err := Experiment("fig99", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if got := len(ExperimentIDs()); got != 15 {
		t.Fatalf("ExperimentIDs = %d entries, want 15", got)
	}
}

func TestParamsOverride(t *testing.T) {
	skipShort(t)
	cfg := small(TPCC1, SLICCSW)
	cfg.SLICC = Params{DilutionT: -1, MatchedT: 2, ExactSearch: true}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Migrations == 0 {
		t.Fatal("no migrations with permissive thresholds")
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, small(TPCC1, Baseline)); err == nil {
		t.Fatal("cancelled RunContext returned no error")
	}
	// Cancelled contexts must not mask config validation.
	if _, err := RunContext(ctx, Config{Threads: -1}); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("validation error = %v, want negative Threads/Scale", err)
	}
}

// TestCompareContextMatchesRun pins the equivalence between the parallel
// Compare path and individual Run calls: same workload, same results.
func TestCompareContextMatchesRun(t *testing.T) {
	skipShort(t)
	cfg := small(TPCC1, Baseline)
	rs, err := CompareContext(context.Background(), cfg, Baseline, SLICCSW)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(small(TPCC1, SLICCSW))
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Cycles != direct.Cycles || rs[1].IMPKI != direct.IMPKI || rs[1].Migrations != direct.Migrations {
		t.Fatalf("CompareContext result %+v != Run result %+v", rs[1], direct)
	}
}

func TestEngine(t *testing.T) {
	eng, err := NewEngine(EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Experiment(context.Background(), "fig99", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	tabs, err := eng.Experiment(context.Background(), "table3", true, 1)
	if err != nil || len(tabs) != 1 {
		t.Fatalf("table3 via engine: %v, %d tables", err, len(tabs))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Experiment(ctx, "fig8", true, 1); err == nil {
		t.Fatal("cancelled experiment returned no error")
	}
	// Simulation-free ids must honor cancellation too.
	if _, err := eng.Experiment(ctx, "table1", true, 1); err == nil {
		t.Fatal("cancelled static experiment returned no error")
	}
}
