package slicc

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"slicc/internal/workload"
)

// storeEngine opens an engine backed by the store at dir.
func storeEngine(t testing.TB, dir string) *Engine {
	t.Helper()
	eng, err := NewEngine(EngineOptions{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// tiny is a sub-second simulation config.
func tiny(p Policy) Config {
	return Config{Benchmark: TPCC1, Policy: p, Threads: 6, Seed: 3, Scale: 0.1}
}

func TestConfigKeyCanonical(t *testing.T) {
	defaulted, err := tiny(SLICCSW).Key()
	if err != nil {
		t.Fatal(err)
	}
	explicit := tiny(SLICCSW)
	explicit.Cores, explicit.L1IKB, explicit.L1DKB = 16, 32, 32
	ek, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ek != defaulted {
		t.Fatal("defaulted and explicit spellings keyed differently")
	}
	other := tiny(SLICC)
	ok, err := other.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ok == defaulted {
		t.Fatal("distinct configs share a key")
	}

	// Trace configs ignore Benchmark/Threads/Seed/Scale, so spellings
	// differing only there share a key; machine fields still matter.
	a := Config{TracePath: "wl.trace"}
	b := Config{TracePath: "wl.trace", Threads: 64, Seed: 9, Scale: 2}
	ka, _ := a.Key()
	kb, _ := b.Key()
	if ka != kb {
		t.Fatal("trace configs keyed on ignored workload fields")
	}
	c := Config{TracePath: "wl.trace", L1IKB: 64}
	kc, _ := c.Key()
	if kc == ka {
		t.Fatal("trace configs ignore machine fields")
	}
	if _, err := (Config{Threads: -1}).Key(); err == nil {
		t.Fatal("invalid config keyed")
	}
}

func TestEngineRunWithStore(t *testing.T) {
	dir := t.TempDir()

	cold := storeEngine(t, dir)
	r1, err := cold.Run(context.Background(), tiny(SLICCSW))
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.SimsExecuted != 1 || s.StorePuts != 1 || s.StoreHits != 0 {
		t.Fatalf("cold stats %+v", s)
	}

	// A fresh engine over the same directory models a new process.
	warm := storeEngine(t, dir)
	r2, err := warm.Run(context.Background(), tiny(SLICCSW))
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.SimsExecuted != 0 || s.StoreHits != 1 {
		t.Fatalf("warm stats %+v, want a pure store hit", s)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("store-served result differs from executed one:\n%+v\nvs\n%+v", r1, r2)
	}

	// Compare on the warm engine: the SLICC-SW leg is served from the
	// store, only the baseline leg executes.
	rs, err := warm.Compare(context.Background(), tiny(SLICCSW), SLICCSW, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Cycles != r1.Cycles {
		t.Fatal("Compare leg diverged from stored result")
	}
	if s := warm.Stats(); s.SimsExecuted != 1 {
		t.Fatalf("stats %+v, want only the baseline executed", s)
	}
}

// TestWarmStoreExperimentsByteIdentical is the acceptance criterion in
// miniature: with a warm store a second engine regenerates experiments
// without executing a single simulation, and the rendered tables are
// byte-identical to the cold run's.
func TestWarmStoreExperimentsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ids := []string{"fig9", "fig3", "table2"}

	render := func(eng *Engine) []byte {
		var buf bytes.Buffer
		for _, id := range ids {
			tables, err := eng.Experiment(context.Background(), id, true, 1)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, tb := range tables {
				tb.Format(&buf)
			}
		}
		return buf.Bytes()
	}

	cold := storeEngine(t, dir)
	out1 := render(cold)
	if s := cold.Stats(); s.SimsExecuted == 0 {
		t.Fatalf("cold stats %+v: expected executions", s)
	}

	warm := storeEngine(t, dir)
	out2 := render(warm)
	s := warm.Stats()
	if s.SimsExecuted != 0 {
		t.Fatalf("warm stats %+v: a warm store must execute 0 simulations", s)
	}
	if s.StoreHits == 0 || s.StoreHits+s.DedupHits != s.SimsRequested {
		t.Fatalf("warm stats %+v: requested != store hits + dedup hits", s)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("warm tables differ from cold tables:\ncold:\n%s\nwarm:\n%s", out1, out2)
	}
}

// TestEngineCloseTraceRun: a trace-replaying engine can be closed (releasing
// the cached container handle) and an independent engine still replays the
// same recording from the store by content digest.
func TestEngineCloseTraceRun(t *testing.T) {
	dir := t.TempDir()
	path := captureContainer(t, t.TempDir(), workload.Config{Kind: workload.TPCC1, Threads: 6, Seed: 3, Scale: 0.1})

	eng := storeEngine(t, dir)
	cfg := Config{TracePath: path, Policy: Baseline}
	r1, err := eng.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2 := storeEngine(t, dir)
	r2, err := eng2.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := eng2.Stats(); s.SimsExecuted != 0 || s.StoreHits != 1 {
		t.Fatalf("stats %+v, want trace replay served from store", s)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatal("trace store hit diverged")
	}
}

// BenchmarkStoreColdRun measures a full simulation plus the store write —
// the price of the first run of a configuration.
func BenchmarkStoreColdRun(b *testing.B) {
	cfg := tiny(Baseline)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := NewEngine(EngineOptions{Workers: 1, StoreDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		eng.Close()
		b.StartTimer()
	}
}

// BenchmarkStoreWarmRun measures serving the same configuration from a warm
// store through a cold engine (fresh process model): disk read + gob decode
// instead of simulation.
func BenchmarkStoreWarmRun(b *testing.B) {
	dir := b.TempDir()
	cfg := tiny(Baseline)
	warmup, err := NewEngine(EngineOptions{Workers: 1, StoreDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warmup.Run(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
	warmup.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := NewEngine(EngineOptions{Workers: 1, StoreDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := eng.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		eng.Close()
		b.StartTimer()
	}
}
