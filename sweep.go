package slicc

import (
	"context"
	"fmt"

	"slicc/internal/sweep"
)

// SweepSpec declares a parameter sweep: lists (or JSON ranges) over
// workloads, policies, machine shapes and SLICC thresholds that expand
// into the cross product of simulations. The zero value sweeps a single
// cell (tpcc1 under slicc-sw on the Table 2 machine); Preset names a
// predefined study (SweepPresets) that explicit fields override. Specs are
// JSON documents first: the same bytes drive Engine.Sweep, `experiments
// -sweep spec.json` and sliccd's POST /v1/sweeps.
type SweepSpec = sweep.Spec

// SweepResult is a completed sweep: per-cell metrics in deterministic
// expansion order, baseline references, and the objective-best cell. It
// renders as JSON, CSV (WriteCSV) or an aligned table (SweepTable).
type SweepResult = sweep.Result

// SweepCellResult is one sweep cell with its measured metrics.
type SweepCellResult = sweep.CellResult

// SweepEvent is one streamed sweep happening: a completed cell or baseline
// (types "cell"/"baseline", carrying the finished SweepCellResult and
// whether it was served from the persistent store), or a terminal
// "done"/"error" marker on transports that need one (sliccd's SSE stream;
// SweepStream itself signals completion by returning). It is also the SSE
// wire format: sliccd serializes SweepEvents as event data and uses Seq as
// the event id.
type SweepEvent = sweep.Event

// SweepEvent types.
const (
	SweepEventCell     = sweep.EventCell
	SweepEventBaseline = sweep.EventBaseline
	SweepEventDone     = sweep.EventDone
	SweepEventError    = sweep.EventError
)

// SweepIntAxis / SweepFloatAxis are sweep dimensions; construct them with
// SweepInts/SweepIntRange/SweepFloats, or in JSON as a list, a bare
// number, or {"from": lo, "to": hi, "step": s}.
type (
	SweepIntAxis   = sweep.IntAxis
	SweepFloatAxis = sweep.FloatAxis
)

// SweepInts builds an integer sweep axis from explicit values.
func SweepInts(vs ...int) SweepIntAxis { return sweep.Ints(vs...) }

// SweepIntRange builds an inclusive integer axis from..to by step.
func SweepIntRange(from, to, step int) (SweepIntAxis, error) {
	return sweep.IntRange(from, to, step)
}

// SweepFloats builds a float sweep axis from explicit values.
func SweepFloats(vs ...float64) SweepFloatAxis { return sweep.Floats(vs...) }

// SweepBool sets a SweepSpec optional boolean (e.g. ExactSearch, where an
// explicit false must be distinguishable from unset to override a preset).
func SweepBool(v bool) *bool { return sweep.Bool(v) }

// SweepPresets lists the named sweep presets ("fig7-thresholds",
// "fig8-dilution", "cache-sizing", "scenario-families", "core-scaling").
func SweepPresets() []string { return sweep.Presets() }

// Sweep expands the spec and runs every cell on the engine's shared pool,
// with the engine's full memoization stack: cells identical to earlier
// simulations — from other sweeps, experiments, Run calls, or the
// persistent store — do not execute again, and a store-warmed rerun of a
// whole sweep executes nothing. Cells that share a workload run as
// lockstep batches — one pass decodes the op stream once for the whole
// family — with results byte-identical to scalar execution (store keys
// included, so batched and unbatched runs warm each other). Output is
// deterministic for a given spec at any worker count. Cancelling ctx
// aborts in-flight cells.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	if e.remote != nil {
		// Distributed engines run every sweep through the streaming remote
		// path (cells enqueue to the fleet); results are identical by the
		// RunStream contract, so callers cannot tell except for where the
		// work ran.
		return sweep.RunStreamVia(ctx, e.pool, spec, e.remote, nil)
	}
	return sweep.Run(ctx, e.pool, spec)
}

// SweepUnbatched is Sweep on the scalar path: every cell simulates alone.
// It exists to measure the lockstep batching win (and to cross-check it —
// results, store keys and table output are byte-identical to Sweep's);
// there is no other reason to prefer it.
func (e *Engine) SweepUnbatched(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	return sweep.RunUnbatched(ctx, e.pool, spec)
}

// SweepStream is Sweep with a per-cell completion callback: emit receives
// one event per finished cell and baseline as it lands. Emission order is
// scheduling-dependent but event content is deterministic — a cell's event
// waits for its group baseline, so the Speedup it carries is final — and
// the returned result is identical to Sweep's. Cells run on the scalar
// path (per-cell completion is the point; lockstep batching buys parity,
// not speedup, since the op stream is already memoized) with unchanged
// store keys, so streamed and batched sweeps warm each other. A
// store-warmed rerun — the resume case — replays every cell instantly with
// StoreHit set. emit is called serially and must return promptly.
func (e *Engine) SweepStream(ctx context.Context, spec SweepSpec, emit func(SweepEvent)) (*SweepResult, error) {
	return sweep.RunStreamVia(ctx, e.pool, spec, e.remote, emit)
}

// SweepTable renders a sweep result as an aligned per-cell table, with the
// objective-best cell called out in the note.
func SweepTable(r *SweepResult) ExperimentTable {
	title := "Sweep"
	if r.Name != "" {
		title = fmt.Sprintf("Sweep — %s", r.Name)
	}
	note := fmt.Sprintf("%d cells, objective %s.", len(r.Cells), r.Objective)
	if best := r.Best(); best != nil {
		note = fmt.Sprintf("%d cells; best by %s: %s/%s", len(r.Cells), r.Objective, best.Workload, best.Policy)
		switch r.Objective {
		case "speedup":
			note += fmt.Sprintf(" at %.3fx", best.Speedup)
		case "cycles":
			note += fmt.Sprintf(" at %.0f cycles", best.Cycles)
		case "impki":
			note += fmt.Sprintf(" at %.2f I-MPKI", best.IMPKI)
		case "dmpki":
			note += fmt.Sprintf(" at %.2f D-MPKI", best.DMPKI)
		}
		note += fmt.Sprintf(" (row %d).", r.BestIndex+1)
	}
	return ExperimentTable{Title: title, Note: note, Header: r.Header(), Rows: r.Rows()}
}
