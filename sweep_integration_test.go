package slicc

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"slicc/internal/runner"
	"slicc/internal/sweep"
)

// TestSweepJobsMatchPublicConfig pins the lockstep between the sweep
// subsystem's token-to-job translation (sweep.Cell.Job) and the public
// slicc.Config's (Config.job): for every policy token and a spread of
// threshold spellings, both sides must produce the identical runner job —
// otherwise sweep cells and equivalent Config runs would stop sharing
// store entries. If this fails after adding a policy, mirror the change in
// internal/sweep's policyDefs. (ExactSearch is deliberately absent: the
// sweep's flag means Figure 7's exact-and-uncharged idealization, which
// public Params does not express; TestPresets plus the fig7 cross-warm CI
// check cover that mapping.)
func TestSweepJobsMatchPublicConfig(t *testing.T) {
	params := []Params{
		{},
		{FillUpT: 128, MatchedT: 2, DilutionT: 24},
		{DilutionT: -1},
	}
	for _, pol := range Policies() {
		for _, p := range params {
			cfg := Config{Benchmark: TPCE, Policy: pol, Threads: 12, Seed: 3, Scale: 0.4, SLICC: p}.withDefaults()
			cell := sweep.Cell{
				Workload: "tpce", Threads: 12, Seed: 3, Scale: 0.4,
				Cores: 16, L1IKB: 32, L1DKB: 32,
				Policy:  pol.Token(),
				FillUpT: p.FillUpT, MatchedT: p.MatchedT, DilutionT: p.DilutionT,
			}
			job, err := cell.Job()
			if err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
			want, got := runner.JobKey(cfg.job()), runner.JobKey(job)
			if isSLICC := pol == SLICC || pol == SLICCPp || pol == SLICCSW; !isSLICC {
				// Thresholds only shape SLICC-family jobs; compare the
				// no-threshold spelling for the rest.
				plain := cell
				plain.FillUpT, plain.MatchedT, plain.DilutionT, plain.ExactSearch = 0, 0, 0, false
				pj, err := plain.Job()
				if err != nil {
					t.Fatal(err)
				}
				got = runner.JobKey(pj)
				base := cfg
				base.SLICC = Params{}
				want = runner.JobKey(base.job())
			}
			if want != got {
				t.Errorf("policy %v params %+v: sweep job key %s != public config job key %s", pol, p, got, want)
			}
		}
	}
}

// tinySweep is a fast multi-axis spec used across the sweep API tests.
func tinySweep() SweepSpec {
	return SweepSpec{
		Name:      "api-tiny",
		Workloads: []string{"tpcc1", "microservice"},
		Policies:  []string{"base", "slicc-sw"},
		Threads:   SweepInts(6),
		Scales:    SweepFloats(0.05),
	}
}

func TestEngineSweep(t *testing.T) {
	eng, err := NewEngine(EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Sweep(context.Background(), tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells", len(res.Cells))
	}
	if res.Best() == nil {
		t.Fatal("no best cell")
	}
	// The rendered table must line up with the result.
	tab := SweepTable(res)
	if len(tab.Rows) != len(res.Cells) || len(tab.Header) != len(tab.Rows[0]) {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	if !strings.Contains(tab.Note, "best by speedup") {
		t.Fatalf("note %q lacks best-cell callout", tab.Note)
	}
	// Sweeps share the engine's memo: re-running the same sweep on the
	// same engine simulates nothing new.
	before := eng.Stats().SimsExecuted
	if _, err := eng.Sweep(context.Background(), tinySweep()); err != nil {
		t.Fatal(err)
	}
	if after := eng.Stats().SimsExecuted; after != before {
		t.Fatalf("repeat sweep executed %d extra simulations", after-before)
	}
	if _, err := eng.Sweep(context.Background(), SweepSpec{Workloads: []string{"nosuch"}}); err == nil {
		t.Fatal("invalid sweep accepted")
	}
}

// TestEngineSweepDeterministicAcrossWorkers pins the acceptance contract:
// the full result — cells, metrics, best selection, JSON bytes — is
// independent of the engine's worker count.
func TestEngineSweepDeterministicAcrossWorkers(t *testing.T) {
	skipShort(t)
	run := func(workers int) *SweepResult {
		eng, err := NewEngine(EngineOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		res, err := eng.Sweep(context.Background(), tinySweep())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep results differ across worker counts")
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("sweep JSON differs across worker counts")
	}
}

// TestEngineSweepStoreWarmed is the end-to-end acceptance check: a second
// engine over the same store re-renders the sweep executing 0 simulations.
func TestEngineSweepStoreWarmed(t *testing.T) {
	skipShort(t)
	dir := t.TempDir()
	run := func() (*SweepResult, EngineStats) {
		eng, err := NewEngine(EngineOptions{Workers: 2, StoreDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		res, err := eng.Sweep(context.Background(), tinySweep())
		if err != nil {
			t.Fatal(err)
		}
		return res, eng.Stats()
	}
	cold, coldStats := run()
	if coldStats.SimsExecuted == 0 {
		t.Fatal("cold sweep executed nothing")
	}
	warm, warmStats := run()
	if warmStats.SimsExecuted != 0 {
		t.Fatalf("store-warmed sweep executed %d simulations, want 0", warmStats.SimsExecuted)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("store-warmed sweep result differs from cold run")
	}
}
