package slicc_test

// The crash/kill resume harness: the proof that "resume" needs no
// checkpoint files. A sweep is SIGKILLed mid-run, the service restarts on
// the same store, and the re-submitted spec — same bytes, same content-key
// id — completes with every previously finished cell served from the
// store. The final table is byte-identical to an uninterrupted run, the
// resumed process executes strictly fewer simulations, and the SDK watcher
// riding across the crash still observes every cell exactly once.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"slicc"
	"slicc/sdk"
)

// resumeSpec is the sweep under test: 8 cells at ~100ms each, so that a
// single-worker server is reliably mid-sweep when the kill lands.
func resumeSpec() slicc.SweepSpec {
	return slicc.SweepSpec{
		Name:      "kill-resume",
		Workloads: []string{"tpcc1", "skewed"},
		Policies:  []string{"base", "nextline", "slicc-sw", "stream"},
		Threads:   slicc.SweepInts(8),
		Scales:    slicc.SweepFloats(0.8),
	}
}

func engineStats(t *testing.T, c *sdk.Client) slicc.EngineStats {
	t.Helper()
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return st.Engine
}

// sweepCSV renders the result the way `experiments -csv` would — the
// byte-level artifact the resume contract promises to reproduce.
func sweepCSV(t *testing.T, res *slicc.SweepResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSweepKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the sliccd binary, runs multi-second sweeps")
	}
	dir := t.TempDir()
	bin := buildSliccd(t, dir)
	spec := resumeSpec()
	ctx := context.Background()

	// Reference: the same sweep, uninterrupted, on its own store.
	ref := bootSliccd(t, bin, "-addr", "127.0.0.1:0", "-store", filepath.Join(dir, "store-ref"))
	refClient := sdk.New(ref.base)
	refRes, err := refClient.WatchSweep(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	refExecuted := engineStats(t, refClient).SimsExecuted
	if refExecuted == 0 {
		t.Fatal("reference run executed nothing")
	}
	ref.stop()

	// Victim: single worker (so cells finish one at a time and the kill
	// lands mid-sweep), fresh store, watched over the SDK.
	storeDir := filepath.Join(dir, "store-victim")
	victim := bootSliccd(t, bin, "-addr", "127.0.0.1:0", "-store", storeDir, "-j", "1")
	client := sdk.New(victim.base)

	var mu sync.Mutex
	cellSeen := map[int]int{}
	cellEvents := make(chan int, 64)
	type watchOut struct {
		res *slicc.SweepResult
		err error
	}
	watchDone := make(chan watchOut, 1)
	go func() {
		res, err := client.WatchSweep(ctx, spec, func(ev slicc.SweepEvent) {
			if ev.Type != slicc.SweepEventCell {
				return
			}
			mu.Lock()
			cellSeen[ev.Index]++
			mu.Unlock()
			cellEvents <- ev.Index
		})
		watchDone <- watchOut{res, err}
	}()

	// Let at least two cells complete (two store puts), then kill -9.
	beforeKill := 0
	for beforeKill < 2 {
		select {
		case <-cellEvents:
			beforeKill++
		case out := <-watchDone:
			t.Fatalf("sweep finished before it could be killed (res=%v err=%v); enlarge resumeSpec", out.res != nil, out.err)
		case <-time.After(60 * time.Second):
			t.Fatal("no cell events within 60s")
		}
	}
	victim.kill()

	// Successor: same address (so the watcher's reconnects land) and the
	// same store (so finished cells are hits). The watcher re-POSTs the
	// spec — ids are content keys — and rides to completion.
	addr := strings.TrimPrefix(victim.base, "http://")
	successor := bootSliccd(t, bin, "-addr", addr, "-store", storeDir, "-j", "1")
	defer successor.stop()

	var out watchOut
	select {
	case out = <-watchDone:
	case <-time.After(120 * time.Second):
		t.Fatal("watcher did not complete after the restart")
	}
	if out.err != nil {
		t.Fatalf("WatchSweep across the kill: %v", out.err)
	}

	// Byte-identical output: the resumed sweep's table is the reference's.
	if !reflect.DeepEqual(out.res, refRes) {
		t.Fatalf("resumed result diverges from uninterrupted run:\n%+v\nvs\n%+v", out.res, refRes)
	}
	if got, want := sweepCSV(t, out.res), sweepCSV(t, refRes); !bytes.Equal(got, want) {
		t.Fatalf("resumed CSV not byte-identical:\n%s\nvs\n%s", got, want)
	}

	// The successor really resumed: it executed strictly fewer simulations
	// than the uninterrupted run, with the difference served from the
	// store — and the cells finished before the kill never re-executed.
	st := engineStats(t, sdk.New(successor.base))
	if st.SimsExecuted >= refExecuted {
		t.Fatalf("successor executed %d sims, reference %d — nothing was resumed", st.SimsExecuted, refExecuted)
	}
	if st.StoreHits < beforeKill {
		t.Fatalf("successor store hits %d < %d cells completed before the kill", st.StoreHits, beforeKill)
	}

	// The watcher saw every cell exactly once across the crash.
	mu.Lock()
	defer mu.Unlock()
	if len(cellSeen) != len(out.res.Cells) {
		t.Fatalf("observed %d distinct cells, want %d", len(cellSeen), len(out.res.Cells))
	}
	for i, n := range cellSeen {
		if n != 1 {
			t.Fatalf("cell %d observed %d times across the kill, want exactly once", i, n)
		}
	}

	// And the service-level view agrees: GET reports done with the full
	// result.
	resp, err := http.Get(successor.base + "/v1/sweeps/" + mustKey(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sw struct {
		Status    string             `json:"status"`
		Completed int                `json:"completed"`
		Total     int                `json:"total"`
		Result    *slicc.SweepResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	if sw.Status != "done" || sw.Completed != sw.Total || !reflect.DeepEqual(sw.Result, refRes) {
		t.Fatalf("successor GET: status=%s %d/%d", sw.Status, sw.Completed, sw.Total)
	}
}

func mustKey(t *testing.T, spec slicc.SweepSpec) string {
	t.Helper()
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}
