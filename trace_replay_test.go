package slicc

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"slicc/internal/trace"
	"slicc/internal/workload"
)

// captureContainer writes the synthetic workload for wcfg to a v2 container
// and returns its path.
func captureContainer(t testing.TB, dir string, wcfg workload.Config) string {
	t.Helper()
	w := workload.New(wcfg)
	path := filepath.Join(dir, "wl.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteWorkload(f, w.Name, w.Threads()); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceReplayMatchesSynthetic is the acceptance check for the trace
// subsystem: capturing a synthetic workload and replaying the container
// through Run must reproduce the direct synthetic run exactly, metric for
// metric, for every policy family.
func TestTraceReplayMatchesSynthetic(t *testing.T) {
	wcfg := workload.Config{Kind: workload.TPCC1, Threads: 8, Seed: 4, Scale: 0.1}
	path := captureContainer(t, t.TempDir(), wcfg)

	for _, policy := range []Policy{Baseline, SLICCSW, StreamPrefetch} {
		direct, err := Run(Config{Benchmark: TPCC1, Policy: policy, Threads: 8, Seed: 4, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		replay, err := Run(Config{TracePath: path, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		// The only legitimate difference is the TracePath echo.
		replay.TracePath = ""
		if !reflect.DeepEqual(direct, replay) {
			t.Fatalf("policy %v: replayed result differs from direct run:\ndirect: %+v\nreplay: %+v", policy, direct, replay)
		}
	}
}

// TestScenarioTraceReplayMatchesSynthetic extends the byte-identity
// contract to the scenario families: each records through the container
// format and replays to the exact metrics of the direct synthetic run.
func TestScenarioTraceReplayMatchesSynthetic(t *testing.T) {
	for _, bench := range []Benchmark{Phased, Skewed, Microservice} {
		wcfg := workload.Config{Kind: bench.kind(), Threads: 6, Seed: 4, Scale: 0.08}
		path := captureContainer(t, t.TempDir(), wcfg)
		direct, err := Run(Config{Benchmark: bench, Policy: SLICCSW, Threads: 6, Seed: 4, Scale: 0.08})
		if err != nil {
			t.Fatal(err)
		}
		replay, err := Run(Config{TracePath: path, Policy: SLICCSW})
		if err != nil {
			t.Fatal(err)
		}
		replay.TracePath = ""
		replay.Benchmark = direct.Benchmark // container fixes the workload; label is meaningless
		if !reflect.DeepEqual(direct, replay) {
			t.Fatalf("%v: replayed result differs from direct run:\ndirect: %+v\nreplay: %+v", bench, direct, replay)
		}
	}
}

func TestTracePathValidation(t *testing.T) {
	if _, err := Run(Config{TracePath: "x.trace", Benchmark: TPCE}); err == nil {
		t.Fatal("TracePath+Benchmark accepted")
	}
	if _, err := Run(Config{TracePath: filepath.Join(t.TempDir(), "missing"), Policy: Baseline}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

// TestCompareWithTrace checks the parallel comparison path replays one
// shared container across policies.
func TestCompareWithTrace(t *testing.T) {
	path := captureContainer(t, t.TempDir(), workload.Config{Kind: workload.TPCE, Threads: 6, Seed: 2, Scale: 0.05})
	rs, err := Compare(Config{TracePath: path}, Baseline, SLICCSW)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Instructions == 0 || rs[0].Instructions != rs[1].Instructions {
		t.Fatalf("trace compare results inconsistent: %+v", rs)
	}
	if rs[1].Policy != SLICCSW || rs[1].TracePath != path {
		t.Fatalf("result identity wrong: %+v", rs[1])
	}
}

// TestExperimentWithTrace pushes a recorded trace through an experiment:
// every benchmark column replays the same container, so the per-benchmark
// rows agree and the engine collapses their simulations.
func TestExperimentWithTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment grid in -short mode")
	}
	path := captureContainer(t, t.TempDir(), workload.Config{Kind: workload.TPCC1, Threads: 6, Seed: 3, Scale: 0.05})
	eng, err := NewEngine(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	tables, err := eng.ExperimentWith(context.Background(), "fig10", ExperimentOptions{Quick: true, TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("no experiment output")
	}
	// Rows are (benchmark, policy, metrics...). Every benchmark replays the
	// same container, so rows sharing a policy must report equal metrics.
	byPolicy := map[string][]string{}
	for _, row := range tables[0].Rows {
		if len(row) < 3 {
			continue
		}
		if prev, ok := byPolicy[row[1]]; ok {
			if !reflect.DeepEqual(prev, row[2:]) {
				t.Fatalf("policy %s metrics diverge across benchmarks of one recorded workload: %v vs %v", row[1], prev, row[2:])
			}
		} else {
			byPolicy[row[1]] = row[2:]
		}
	}
	if st := eng.Stats(); st.WorkloadsBuilt != 1 {
		t.Fatalf("built %d workloads for a single-trace experiment, want 1", st.WorkloadsBuilt)
	}
}
